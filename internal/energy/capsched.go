package energy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// CapSchedule is a time-varying per-core power envelope: a step
// function over virtual time. The paper's allocation story (§4, §5)
// fixes one envelope up front; real machines tighten and relax it
// mid-run (thermal events, battery budgets, co-tenant arrivals), which
// is one of the disruption signals the adaptive runtime reacts to —
// either by re-placing processes under the new cap or by scaling
// frequency down (the §2.1 f³ law) when no compliant placement exists.
type CapSchedule struct {
	// Initial is the envelope in effect from t=0 until the first step.
	// Zero or negative means "unlimited", as everywhere in sched.
	Initial float64
	// Steps are the cap changes, strictly ascending in From.
	Steps []CapStep
}

// CapStep is one envelope change: from virtual time From on, the
// per-core cap is Cap.
type CapStep struct {
	From sim.Time
	Cap  float64
}

// ConstantCap is the schedule that never changes — the static envelope
// the rest of the repo uses.
func ConstantCap(cap float64) CapSchedule { return CapSchedule{Initial: cap} }

// Validate checks that the steps are strictly ascending in time.
func (s CapSchedule) Validate() error {
	for i := 1; i < len(s.Steps); i++ {
		if s.Steps[i].From <= s.Steps[i-1].From {
			return fmt.Errorf("energy: cap schedule steps not strictly ascending at index %d (%d after %d)",
				i, s.Steps[i].From, s.Steps[i-1].From)
		}
	}
	return nil
}

// CapAt returns the per-core envelope in effect at virtual time t.
func (s CapSchedule) CapAt(t sim.Time) float64 {
	// Find the last step with From <= t.
	i := sort.Search(len(s.Steps), func(i int) bool { return s.Steps[i].From > t })
	if i == 0 {
		return s.Initial
	}
	return s.Steps[i-1].Cap
}

// NextChange returns the time of the first cap change strictly after t;
// ok is false when the schedule is constant from t on.
func (s CapSchedule) NextChange(t sim.Time) (at sim.Time, ok bool) {
	i := sort.Search(len(s.Steps), func(i int) bool { return s.Steps[i].From > t })
	if i == len(s.Steps) {
		return 0, false
	}
	return s.Steps[i].From, true
}

// ThrottleMult returns the frequency multiplier that brings a core
// dissipating power p under cap: power scales as f³ (§2.1), so the
// compliant multiplier is ∛(cap/p), clamped to at most 1 (the runtime
// only throttles down; overclocking is not a recovery action). A cap
// of zero or below means unlimited and a non-positive p cannot violate
// any cap; both return 1.
func ThrottleMult(p, cap float64) float64 {
	if cap <= 0 || p <= 0 || p <= cap {
		return 1
	}
	return math.Cbrt(cap / p)
}
