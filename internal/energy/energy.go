// Package energy implements the STAMP power/energy complexity accounting
// (§3.1): per-process operation counters, energy computation from a
// machine cost table, and the four classical power-aware metrics of
// §2.1 — D, PDP, EDP and ED²P.
package energy

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Counters records the operation counts a STAMP process accumulates.
// The fields map one-to-one onto the paper's parameters: c_fp, c_int,
// d_r_a, d_r_e, d_w_a, d_w_e, m_s_a, m_s_e, m_r_a, m_r_e, plus
// transactional outcomes and observed serialization (κ).
type Counters struct {
	FpOps  int64 // c_fp
	IntOps int64 // c_int

	ReadsIntra  int64 // d_r_a
	ReadsInter  int64 // d_r_e
	WritesIntra int64 // d_w_a
	WritesInter int64 // d_w_e

	SendsIntra int64 // m_s_a
	SendsInter int64 // m_s_e
	RecvsIntra int64 // m_r_a
	RecvsInter int64 // m_r_e

	TxCommits int64
	TxAborts  int64 // each abort is a rollback, contributing to κ

	// QueueWait is virtual time spent queued on serialized shared
	// memory or blocked sends — the measured counterpart of the model's
	// κ serialization term.
	QueueWait sim.Time
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.FpOps += o.FpOps
	c.IntOps += o.IntOps
	c.ReadsIntra += o.ReadsIntra
	c.ReadsInter += o.ReadsInter
	c.WritesIntra += o.WritesIntra
	c.WritesInter += o.WritesInter
	c.SendsIntra += o.SendsIntra
	c.SendsInter += o.SendsInter
	c.RecvsIntra += o.RecvsIntra
	c.RecvsInter += o.RecvsInter
	c.TxCommits += o.TxCommits
	c.TxAborts += o.TxAborts
	c.QueueWait += o.QueueWait
}

// SubFrom subtracts base from c in place, leaving the delta accumulated
// since the base snapshot was taken.
func (c *Counters) SubFrom(base Counters) {
	c.FpOps -= base.FpOps
	c.IntOps -= base.IntOps
	c.ReadsIntra -= base.ReadsIntra
	c.ReadsInter -= base.ReadsInter
	c.WritesIntra -= base.WritesIntra
	c.WritesInter -= base.WritesInter
	c.SendsIntra -= base.SendsIntra
	c.SendsInter -= base.SendsInter
	c.RecvsIntra -= base.RecvsIntra
	c.RecvsInter -= base.RecvsInter
	c.TxCommits -= base.TxCommits
	c.TxAborts -= base.TxAborts
	c.QueueWait -= base.QueueWait
}

// Reads returns d_r_a + d_r_e.
func (c Counters) Reads() int64 { return c.ReadsIntra + c.ReadsInter }

// Writes returns d_w_a + d_w_e.
func (c Counters) Writes() int64 { return c.WritesIntra + c.WritesInter }

// Sends returns m_s_a + m_s_e.
func (c Counters) Sends() int64 { return c.SendsIntra + c.SendsInter }

// Recvs returns m_r_a + m_r_e.
func (c Counters) Recvs() int64 { return c.RecvsIntra + c.RecvsInter }

// Energy computes the total energy of the counted operations under cost
// table t, per the paper's E formula:
//
//	E = c_fp·w_fp + c_int·w_int + w_dr·(d_r_a+d_r_e) + w_dw·(d_w_a+d_w_e)
//	  + w_mr·(m_r_a+m_r_e) + w_ms·(m_s_a+m_s_e)
//
// Aborted transactional work is already included: the ops executed
// during a rolled-back attempt were counted when they ran, which is
// exactly the "energy of each computation" rule — wasted speculative
// work dissipates real energy.
func Energy(c Counters, t machine.CostTable) float64 {
	return EnergyScaled(c, t, 1)
}

// EnergyScaled is Energy with the local-computation terms multiplied by
// computeScale — the per-op energy multiplier of a heterogeneous core
// (mult², per the f³ power law). Communication energies are wire- and
// memory-bound, not core-clock-bound, so they are left unscaled.
func EnergyScaled(c Counters, t machine.CostTable, computeScale float64) float64 {
	return (float64(c.FpOps)*t.WFp+float64(c.IntOps)*t.WInt)*computeScale +
		float64(c.Reads())*t.WRead +
		float64(c.Writes())*t.WWrite +
		float64(c.Recvs())*t.WRecv +
		float64(c.Sends())*t.WSend
}

// LeakageEnergy returns the static (ungated) energy of `threads`
// hardware threads powered for duration d at per-thread-per-tick
// leakage w. The paper's first-order model assumes perfect clock
// gating (w = 0, §3.1: "functional units are gated off in every cycle
// if they are not used"); this helper quantifies how conclusions shift
// when that assumption is relaxed.
func LeakageEnergy(w float64, d sim.Time, threads int) float64 {
	return w * float64(d) * float64(threads)
}

// WithLeakage returns a copy of r with static energy added for
// `threads` powered hardware threads at leakage w per thread-tick.
func (r Report) WithLeakage(w float64, threads int) Report {
	r.E += LeakageEnergy(w, r.D, threads)
	return r
}

// Report is a (delay, energy) measurement with derived metrics.
type Report struct {
	D sim.Time // delay: execution (virtual) time
	E float64  // energy
}

// Power returns the mean dissipated power E/D. A zero-delay report has
// zero power by convention.
func (r Report) Power() float64 {
	if r.D == 0 {
		return 0
	}
	return r.E / float64(r.D)
}

// Delay returns D as a float for metric arithmetic.
func (r Report) Delay() float64 { return float64(r.D) }

// PDP returns the power-delay product, which equals the energy E.
func (r Report) PDP() float64 { return r.Power() * r.Delay() }

// EDP returns the energy-delay product E·D.
func (r Report) EDP() float64 { return r.E * r.Delay() }

// ED2P returns the energy-delay-squared product E·D².
func (r Report) ED2P() float64 { return r.E * r.Delay() * r.Delay() }

// String formats the report with all four §2.1 metrics.
func (r Report) String() string {
	return fmt.Sprintf("D=%d E=%.1f P=%.3f PDP=%.1f EDP=%.3g ED2P=%.3g",
		r.D, r.E, r.Power(), r.PDP(), r.EDP(), r.ED2P())
}

// Metric selects one of the four §2.1 objectives for algorithm choice.
type Metric int

const (
	MetricD Metric = iota
	MetricPDP
	MetricEDP
	MetricED2P
)

// String returns the paper's name for the metric.
func (m Metric) String() string {
	switch m {
	case MetricD:
		return "D"
	case MetricPDP:
		return "PDP"
	case MetricEDP:
		return "EDP"
	case MetricED2P:
		return "ED2P"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Eval returns the report's value under metric m (lower is better for
// all four).
func (m Metric) Eval(r Report) float64 {
	switch m {
	case MetricD:
		return r.Delay()
	case MetricPDP:
		return r.PDP()
	case MetricEDP:
		return r.EDP()
	case MetricED2P:
		return r.ED2P()
	}
	panic("energy: unknown metric")
}

// Better reports whether a beats b under metric m.
func (m Metric) Better(a, b Report) bool { return m.Eval(a) < m.Eval(b) }
