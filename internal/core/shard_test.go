package core

import (
	"reflect"
	"testing"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/msgpass"
	"repro/internal/sim"
)

// shardRunDigest is everything observable a sharded run must reproduce
// bit-identically: per-member completion times and operation counters,
// plus the folded network statistics.
type shardRunDigest struct {
	End       [][]sim.Time
	Counters  [][]energy.Counters
	Delivered int64
	Wire      sim.Time
	Occupancy float64
	MaxInbox  int
}

// runShardRing builds a clustered machine (2 clusters × 2 chips × 2
// cores × 2 threads), homes one two-member group per chip via
// ShardByPlacement, and runs a cross-chip message ring: rank 0 of each
// chip computes, sends to the next chip, receives from the previous,
// and barriers with its chip-mate each round. shards <= 1 builds the
// sequential reference system.
func runShardRing(t *testing.T, shards, workers int) shardRunDigest {
	t.Helper()
	cfg := machine.Cluster(2, 2, 2, 2)
	var sys *System
	if shards <= 1 {
		sys = NewSystem(cfg)
	} else {
		sys = NewShardedSystem(cfg, shards, workers)
	}

	const rounds = 5
	nChips := cfg.Chips
	perChip := cfg.CoresPerChip * cfg.ThreadsPerCore
	dig := shardRunDigest{
		End:      make([][]sim.Time, nChips),
		Counters: make([][]energy.Counters, nChips),
	}
	groups := make([]*Group, nChips)
	for chip := 0; chip < nChips; chip++ {
		chip := chip
		pl := Placement{
			machine.ThreadID(chip * perChip),
			machine.ThreadID(chip*perChip + 2), // second core of the chip
		}
		dig.End[chip] = make([]sim.Time, len(pl))
		dig.Counters[chip] = make([]energy.Counters, len(pl))
		groups[chip] = sys.NewGroupOpts("chip"+string(rune('0'+chip)), Attrs{Dist: IntraProc, Exec: AsyncExec, Comm: AsyncComm}, len(pl),
			func(c *Ctx) {
				if c.Index() == 0 {
					next := groups[(chip+1)%nChips].Ctxs()[0].Endpoint()
					for r := 0; r < rounds; r++ {
						c.IntOps(int64(3 + chip + r))
						c.Endpoint().Send(c, next, chip*100+r)
						m := c.Recv()
						if got := m.Payload.(int) % 100; got != r {
							t.Errorf("chip %d round %d: got payload %v", chip, r, m.Payload)
						}
						c.Barrier()
					}
				} else {
					for r := 0; r < rounds; r++ {
						c.FpOps(int64(2 + chip))
						c.Barrier()
					}
				}
				dig.End[chip][c.Index()] = c.Now()
			},
			WithPlacement(pl), ShardByPlacement())
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
	}
	for chip, g := range groups {
		for i, c := range g.Ctxs() {
			dig.Counters[chip][i] = *c.Counters()
		}
	}
	dig.Delivered = sys.Net.Delivered()
	dig.Wire = sys.Net.WireTicks()
	dig.Occupancy = sys.Net.OccupancyTicks()
	dig.MaxInbox = sys.Net.MaxInboxDepth()
	return dig
}

// TestShardedSystemEquivalence pins the tentpole property at the core
// layer: a sharded system is bit-identical to the sequential one for
// every shard and worker count, and the DisableSharding escape hatch
// collapses NewShardedSystem to the sequential path.
func TestShardedSystemEquivalence(t *testing.T) {
	ref := runShardRing(t, 0, 0)
	if ref.Delivered == 0 {
		t.Fatal("reference run delivered no messages")
	}
	layouts := []struct{ shards, workers int }{
		{2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4},
	}
	for _, l := range layouts {
		got := runShardRing(t, l.shards, l.workers)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("shards=%d workers=%d diverged from sequential:\n got %+v\nwant %+v",
				l.shards, l.workers, got, ref)
		}
	}

	DisableSharding = true
	defer func() { DisableSharding = false }()
	got := runShardRing(t, 4, 4)
	if !reflect.DeepEqual(got, ref) {
		t.Error("DisableSharding run diverged from sequential")
	}
}

// TestDefaultShardsReroutesNewSystem pins the corpus-wide switch: with
// DefaultShards set, plain NewSystem builds a sharded system.
func TestDefaultShardsReroutesNewSystem(t *testing.T) {
	DefaultShards, DefaultShardWorkers = 2, 2
	defer func() { DefaultShards, DefaultShardWorkers = 0, 0 }()
	sys := NewSystem(machine.Cluster(2, 2, 2, 2))
	if sys.SG == nil || sys.SG.NumShards() != 2 {
		t.Fatalf("NewSystem under DefaultShards=2 built SG=%v", sys.SG)
	}
	if sys.K != sys.SG.Shard(0) {
		t.Fatal("coordinator kernel must be shard 0")
	}
	// Shards are clamped to the chip count.
	DefaultShards = 64
	sys = NewSystem(machine.Cluster(2, 2, 2, 2))
	if sys.SG == nil || sys.SG.NumShards() != 4 {
		t.Fatalf("shards not clamped to chips: %v", sys.SG)
	}
}

// TestShardHomedMemoryAccessPanics pins the guard: shared memory is
// coordinator-only, and a shard-homed process touching it fails loudly
// instead of racing.
func TestShardHomedMemoryAccessPanics(t *testing.T) {
	cfg := machine.Cluster(2, 2, 2, 2)
	sys := NewShardedSystem(cfg, 4, 1)
	reg := memory.NewRegion[int](sys.Mem, "shared", memory.Inter, 0, 4)
	perChip := cfg.CoresPerChip * cfg.ThreadsPerCore
	// A group homed on shard 3 (chip 3).
	pl := Placement{machine.ThreadID(3 * perChip)}
	sys.NewGroupOpts("offshard", Attrs{}, 1, func(c *Ctx) {
		reg.Read(c, 0)
	}, WithPlacement(pl), ShardByPlacement())
	err := sys.Run()
	if err == nil {
		t.Fatal("expected the run to fail")
	}
}

// TestShardByPlacementDemotesUnderObservers pins the demotion rule: a
// system carrying a tracer keeps every group on the coordinator, so
// observers never see cross-shard interleavings.
func TestShardByPlacementDemotesUnderObservers(t *testing.T) {
	cfg := machine.Cluster(2, 2, 2, 2)
	sys := NewShardedSystem(cfg, 4, 1)
	sys.Net.SetProbe(nopProbe{})
	perChip := cfg.CoresPerChip * cfg.ThreadsPerCore
	pl := Placement{machine.ThreadID(3 * perChip)}
	g := sys.NewGroupOpts("observed", Attrs{}, 1, func(c *Ctx) { c.IntOps(1) },
		WithPlacement(pl), ShardByPlacement())
	if g.Kernel() != sys.K {
		t.Fatal("group with a probe installed must demote to the coordinator")
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShardByPlacementSpanningPanics pins the placement contract.
func TestShardByPlacementSpanningPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("spanning placement did not panic")
		}
	}()
	cfg := machine.Cluster(2, 2, 2, 2)
	sys := NewShardedSystem(cfg, 4, 1)
	perChip := cfg.CoresPerChip * cfg.ThreadsPerCore
	pl := Placement{0, machine.ThreadID(3 * perChip)} // chips 0 and 3
	sys.NewGroupOpts("spanning", Attrs{}, 2, func(c *Ctx) {}, WithPlacement(pl), ShardByPlacement())
}

type nopProbe struct{}

func (nopProbe) MsgSend(src, dst *msgpass.Endpoint, p *sim.Proc) uint64   { return 1 }
func (nopProbe) MsgRecv(dst *msgpass.Endpoint, p *sim.Proc, token uint64) {}
