package core

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/stats"
)

// roundTimeBounds buckets per-round execution times: exponential from 1
// tick, doubling, 16 buckets (covers 1..32768 ticks, overflow beyond).
var roundTimeBounds = stats.ExpBounds(1, 2, 16)

// CollectMetrics publishes end-of-run aggregates into the attached
// metrics registry: STM commit/abort traffic, network load, per-region
// memory contention, per-group T/E/P with operation counts, a
// round-time histogram per group, and the profiler's per-process time
// breakdown. Idempotent — every metric is a gauge Set (or a histogram
// rebuilt from scratch), so calling it twice does not double-count.
// No-op without a registry.
func (sys *System) CollectMetrics() {
	r := sys.Obs.Registry()
	if r == nil {
		return
	}

	// Transactional memory.
	r.Gauge("stamp_stm_commits", "Committed top-level transactions.").Set(float64(sys.TM.Commits()))
	r.Gauge("stamp_stm_aborts", "Aborted transaction attempts (rollbacks).").Set(float64(sys.TM.Aborts()))
	r.Gauge("stamp_stm_abort_rate", "Aborts over total attempts.").Set(sys.TM.AbortRate())

	// Message-passing network.
	r.Gauge("stamp_net_messages_delivered", "Messages delivered.").Set(float64(sys.Net.Delivered()))
	r.Gauge("stamp_net_wire_ticks", "Summed in-flight message latency.").Set(float64(sys.Net.WireTicks()))
	r.Gauge("stamp_net_occupancy_ticks", "Summed sender/receiver bandwidth occupancy.").Set(sys.Net.OccupancyTicks())
	r.Gauge("stamp_net_max_inbox_depth", "Deepest mailbox backlog observed.").Set(float64(sys.Net.MaxInboxDepth()))

	// Shared-memory regions.
	for _, rs := range sys.Mem.RegionStats() {
		rl := obs.L("region", rs.Name)
		r.Gauge("stamp_mem_reads", "Serialized shared reads per region.", rl).Set(float64(rs.Reads))
		r.Gauge("stamp_mem_writes", "Serialized shared writes per region.", rl).Set(float64(rs.Writes))
		r.Gauge("stamp_mem_stalled_accesses", "Accesses that queued behind a busy location.", rl).Set(float64(rs.Stalled))
		r.Gauge("stamp_mem_stall_ticks", "Total queueing time (measured kappa input).", rl).Set(float64(rs.StallTicks))
		r.Gauge("stamp_mem_max_queue_depth", "Deepest per-location service queue observed.", rl).Set(float64(rs.MaxQueueDepth))
	}

	// Groups: the paper's T (max), E (sum), P (E/T) plus op counts and
	// the distribution of per-round times.
	for _, g := range sys.groups {
		rep := g.Report()
		gl := obs.L("group", g.name)
		r.Gauge("stamp_group_procs", "Group size.", gl).Set(float64(rep.N))
		r.Gauge("stamp_group_time_ticks", "Group execution time T (max over members).", gl).Set(float64(rep.T()))
		r.Gauge("stamp_group_energy", "Group energy E (sum over members).", gl).Set(rep.E())
		r.Gauge("stamp_group_power", "Group mean power P = E/T.", gl).Set(rep.Power())
		ops := rep.Ops
		r.Gauge("stamp_group_fp_ops", "Floating-point operations.", gl).Set(float64(ops.FpOps))
		r.Gauge("stamp_group_int_ops", "Integer operations.", gl).Set(float64(ops.IntOps))
		r.Gauge("stamp_group_shared_reads", "Shared-memory reads (intra+inter).", gl).Set(float64(ops.ReadsIntra + ops.ReadsInter))
		r.Gauge("stamp_group_shared_writes", "Shared-memory writes (intra+inter).", gl).Set(float64(ops.WritesIntra + ops.WritesInter))
		r.Gauge("stamp_group_sends", "Messages sent (intra+inter).", gl).Set(float64(ops.SendsIntra + ops.SendsInter))
		r.Gauge("stamp_group_recvs", "Messages received (intra+inter).", gl).Set(float64(ops.RecvsIntra + ops.RecvsInter))
		r.Gauge("stamp_group_tx_commits", "Transaction commits by members.", gl).Set(float64(ops.TxCommits))
		r.Gauge("stamp_group_tx_aborts", "Transaction aborts charged to members.", gl).Set(float64(ops.TxAborts))
		r.Gauge("stamp_group_queue_wait_ticks", "Summed member queueing time.", gl).Set(float64(ops.QueueWait))

		h := r.Histogram("stamp_round_time_ticks", "Per-round execution times across members.", roundTimeBounds, gl)
		h.Reset()
		for _, c := range g.ctxs {
			for _, rec := range c.rounds {
				h.Observe(float64(rec.T()))
			}
		}
	}

	// Placement: which hardware thread each process is bound to.
	for _, g := range sys.groups {
		for _, c := range g.ctxs {
			r.Gauge("stamp_proc_thread", "Hardware thread the process is bound to.",
				obs.L("group", g.name), obs.L("idx", strconv.Itoa(c.idx))).Set(float64(c.thread))
		}
	}

	sys.Obs.Profiler().Collect(r)
}
