// Step-machine execution of STAMP process bodies.
//
// A goroutine body blocks by parking its goroutine; its stack is the
// continuation. A step body is the same program turned inside out: each
// Step runs straight-line code to the next blocking point and returns
// the continuation explicitly, so the kernel resumes the member by
// calling a function instead of unparking a goroutine — no stack, no
// channel handoff, no per-member goroutine (see sim.Kernel.SpawnStep).
//
// The combinators below (StepBarrier, StepUnitBegin/End,
// StepRoundBegin/End, StepRecvN) are the boundary-park counterparts of
// Barrier, SUnit, SRound and RecvN. Each performs the identical
// charges, trace events and spans in the identical order, so a step
// driver that mirrors its goroutine body produces a bit-identical
// simulation — the property the step-vs-goroutine golden tests pin.
// Blocking calls that have no Step* counterpart (Recv, Atomically,
// memory operations, a parking Hold) remain usable inside a step: they
// park the activation's carrier goroutine mid-step, which is slower
// than a boundary park but observationally the same.
package core

import (
	"fmt"

	"repro/internal/msgpass"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Step is one activation of a step-machine process body: straight-line
// code to the next blocking point. It returns the continuation to run
// when the process next resumes, or nil when the body is done.
type Step func(c *Ctx) Step

// GoroutineBodies forces applications that support both execution modes
// (jacobi, apsp) to spawn classic goroutine bodies instead of step
// drivers. Step mode is the default; the flag exists so equivalence
// tests can run the same workload both ways and compare outputs
// bit-for-bit, and as an escape hatch while debugging a driver.
var GoroutineBodies bool

// NewStepGroup is NewGroup for step-machine bodies: body is called once
// per member at first activation to build the member's state and
// return its first Step.
func (sys *System) NewStepGroup(name string, attrs Attrs, n int, body func(ctx *Ctx) Step) *Group {
	return sys.NewStepGroupOpts(name, attrs, n, body)
}

// NewStepGroupOpts is NewStepGroup with options. Group construction,
// placement, restore staging and member coordinates are identical to
// NewGroupOpts; only the kernel spawn differs (SpawnStep instead of
// Spawn). Member Proc records are pinned — contexts, fault plans and
// reports retain them past completion — so step groups trade the
// free-list recycling of raw SpawnStep for its other wins: no
// per-member goroutine and no stack while parked at a boundary.
func (sys *System) NewStepGroupOpts(name string, attrs Attrs, n int, body func(ctx *Ctx) Step, opts ...GroupOption) *Group {
	g, order := sys.newGroupShell(name, attrs, n, opts)
	for j := 0; j < n; j++ {
		i := j
		if order != nil {
			i = order[j]
		}
		ctx := g.ctxs[i]
		ctx.stepBody = body
		ctx.stepDriveFn = ctx.stepDrive
		pname := fmt.Sprintf("%s/%d", name, i)
		ctx.p = g.k.SpawnStep(pname, ctx.stepBegin)
		ctx.p.Ctx = ctx
		ctx.p.Pin()
		ctx.p.Defer(ctx.stepEpilogue)
	}
	sys.groups = append(sys.groups, g)
	return g
}

// stepBegin is the member's first activation: the step-mode analog of
// the prologue NewGroupOpts wraps around a goroutine body (restore
// staging, proc span), followed by the body builder.
func (c *Ctx) stepBegin(p *sim.Proc) sim.StepFunc {
	c.start = p.Now()
	if s := c.restoreSnap; s != nil {
		c.restoreSnap = nil
		c.applyRestore(s)
	}
	if tr := c.sys.Obs.Tracer(); tr.Enabled() {
		c.procSpan = tr.Begin(c.start, p.Name(), "proc", p.Name(), 0)
	}
	body := c.stepBody
	c.stepBody = nil
	if c.stepInner = body(c); c.stepInner == nil {
		return nil
	}
	return c.stepDriveFn
}

// stepDrive adapts the core-level Step chain to the kernel's StepFunc
// trampoline: run one inner Step, stash its continuation, and hand the
// same pre-bound adapter back. The kernel calls it again immediately if
// the Step didn't park, so a chain of non-blocking Steps runs
// back-to-back within one activation burst.
func (c *Ctx) stepDrive(p *sim.Proc) sim.StepFunc {
	next := c.stepInner(c)
	if next == nil {
		return nil
	}
	c.stepInner = next
	return c.stepDriveFn
}

// stepEpilogue is the member's finalizer (sim.Proc.Defer): the exact
// deferred epilogue a goroutine body runs, executed on normal
// completion, kill, and teardown alike.
func (c *Ctx) stepEpilogue(p *sim.Proc) {
	c.flush() // body may end with batched compute pending
	c.end = p.Now()
	c.sys.Obs.Tracer().End(c.procSpan, c.end)
	if p.Killed() {
		// A kill interrupts instrumented sections mid-flight: charges
		// may exceed the elapsed total, so seal leniently.
		c.prof.FinishInterrupted(c.end - c.start)
	} else {
		c.prof.Finish(c.end - c.start)
	}
	c.sys.M.Release(c.thread)
}

// --- barrier ---------------------------------------------------------

// StepBarrier arrives at the group barrier and returns the Step to run
// next: then directly for the tripping arrival (which releases the
// group and continues inline, exactly like Await), or a resume shim
// that completes the wait accounting when the barrier trips. The
// boundary-park counterpart of Barrier.
func (c *Ctx) StepBarrier(then Step) Step {
	if c.g.n <= 1 {
		return then
	}
	before := c.Now()
	if c.g.bar.StepAwait(c.p) {
		c.barrierTripped()
		c.barrierFinish(before)
		return then
	}
	c.barBefore = before
	c.stepAfterBar = then
	return stepBarrierResumeFn
}

var stepBarrierResumeFn Step = stepBarrierResume

func stepBarrierResume(c *Ctx) Step {
	then := c.stepAfterBar
	c.stepAfterBar = nil
	c.barrierFinish(c.barBefore)
	return then
}

// --- S-unit / S-round ------------------------------------------------

// StepUnitBegin opens an S-unit: the prologue of SUnit, split off so a
// step body can park inside the unit. Close with StepUnitEnd.
func (c *Ctx) StepUnitBegin() {
	if c.inUnit {
		panic("core: S-units may not nest (an S-unit is a minimal sequential process)")
	}
	c.inUnit = true
	c.unitStart = c.Now()
	c.unitBase = c.c
	c.traceEvent(trace.UnitStart, fmt.Sprintf("unit %d", c.unit))
	if tr := c.tracerSpans(); tr.Enabled() {
		c.unitSpan = tr.Begin(c.unitStart, c.p.Name(), "unit", fmt.Sprintf("unit %d", c.unit), c.procSpan)
	}
	c.unitRoundsBefore = len(c.rounds)
}

// StepUnitEnd closes the S-unit opened by StepUnitBegin: the epilogue
// of SUnit, recording the unit's measured window and operation deltas.
func (c *Ctx) StepUnitEnd() {
	rec := UnitRec{
		Index:  c.unit,
		Start:  c.unitStart,
		End:    c.Now(),
		Rounds: len(c.rounds) - c.unitRoundsBefore,
	}
	rec.Ops = c.c
	rec.Ops.SubFrom(c.unitBase)
	c.units = append(c.units, rec)
	c.traceEvent(trace.UnitEnd, fmt.Sprintf("unit %d", c.unit))
	c.tracerSpans().End(c.unitSpan, rec.End)
	c.unitSpan = 0
	c.unit++
	c.inUnit = false
}

// StepRoundBegin opens an S-round: the prologue of SRound. Close with
// StepRoundEnd, which also performs the synch_comm barrier.
func (c *Ctx) StepRoundBegin() {
	if c.inRound {
		panic("core: S-rounds may not nest")
	}
	c.inRound = true
	c.roundStart = c.Now()
	c.roundBase = c.c
	c.traceEvent(trace.RoundStart, fmt.Sprintf("round %d", c.round))
	if tr := c.tracerSpans(); tr.Enabled() {
		parent := c.unitSpan
		if parent == 0 {
			parent = c.procSpan
		}
		c.roundSpan = tr.Begin(c.roundStart, c.p.Name(), "round", fmt.Sprintf("round %d", c.round), parent)
	}
}

// StepRoundEnd closes the S-round opened by StepRoundBegin and returns
// the Step to run next. Under synch_comm the group barriers first —
// the round's implicit barrier, included in its measured time exactly
// as in SRound — and the round record is sealed when the barrier
// releases.
func (c *Ctx) StepRoundEnd(then Step) Step {
	if c.g.attrs.Comm == SynchComm && c.g.n > 1 {
		c.roundThen = then
		return c.StepBarrier(stepRoundSealFn)
	}
	return c.stepRoundSeal(then)
}

var stepRoundSealFn Step = func(c *Ctx) Step {
	then := c.roundThen
	c.roundThen = nil
	return c.stepRoundSeal(then)
}

// stepRoundSeal is SRound's epilogue: record, trace, close the span,
// advance the round index.
func (c *Ctx) stepRoundSeal(then Step) Step {
	rec := RoundRec{
		Unit:  c.unit,
		Round: c.round,
		Start: c.roundStart,
		End:   c.Now(),
	}
	rec.Ops = c.c
	rec.Ops.SubFrom(c.roundBase)
	c.rounds = append(c.rounds, rec)
	c.traceEvent(trace.RoundEnd, fmt.Sprintf("round %d", c.round))
	c.tracerSpans().End(c.roundSpan, rec.End)
	c.roundSpan = 0
	c.round++
	c.inRound = false
	return then
}

// --- communication ---------------------------------------------------

// StepRecvN receives exactly n messages, parking at an activation
// boundary whenever the inbox is empty, then runs then with the
// received batch. The boundary-park counterpart of RecvN, with one
// deliberate difference: the message slice is a per-member pooled
// buffer, valid only until the callback returns. Callbacks must copy
// what they keep — retaining the slice (or a subslice) sees it
// overwritten by the next StepRecvN; the stamplint poolsafe check
// flags such escapes.
func (c *Ctx) StepRecvN(n int, then func(ms []msgpass.Message) Step) Step {
	if tr := c.tracerSpans(); tr.Enabled() {
		c.recvSpan = tr.Begin(c.Now(), c.p.Name(), "msg", "recv", c.spanParent())
	} else {
		c.recvSpan = 0
	}
	c.recvNeed = n
	c.recvThen = then
	c.recvBuf = c.recvBuf[:0]
	c.recvSt = msgpass.StepRecvState{}
	return stepRecvLoop(c)
}

var stepRecvLoopFn Step

func init() { stepRecvLoopFn = stepRecvLoop }

func stepRecvLoop(c *Ctx) Step {
	for len(c.recvBuf) < c.recvNeed {
		m, ok := c.ep.StepRecv(c, &c.recvSt)
		if !ok {
			return stepRecvLoopFn // enrolled on the receive queue; resume here
		}
		c.recvBuf = append(c.recvBuf, m)
	}
	c.tracerSpans().End(c.recvSpan, c.Now())
	c.recvSpan = 0
	then := c.recvThen
	c.recvThen = nil
	return then(c.recvBuf)
}
