package core

import (
	"fmt"
	"strings"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/sim"
)

// ProcReport is the measured cost of one STAMP process (rule 3 of
// §3.1: sums over its S-units).
type ProcReport struct {
	Index   int
	Thread  machine.ThreadID
	Start   sim.Time
	End     sim.Time
	Ops     energy.Counters
	EnergyE float64
}

// T returns the process's execution time.
func (p ProcReport) T() sim.Time { return p.End - p.Start }

// GroupReport aggregates a finished group per rule 5 of §3.1: execution
// time is the max over members, energy is the sum, power is E/T.
type GroupReport struct {
	Name    string
	Attrs   Attrs
	N       int
	Start   sim.Time
	End     sim.Time
	Ops     energy.Counters // sum over members
	EnergyE float64         // sum over members
	PerProc []ProcReport
}

// Report computes the group's aggregate report. Call it after the
// simulation has run to completion.
func (g *Group) Report() GroupReport {
	costs := g.sys.M.Cfg.Costs
	r := GroupReport{Name: g.name, Attrs: g.attrs, N: g.n}
	for i, c := range g.ctxs {
		e := energy.EnergyScaled(c.c, costs, c.computeEnergyScale())
		pr := ProcReport{
			Index:   c.idx,
			Thread:  c.thread,
			Start:   c.start,
			End:     c.end,
			Ops:     c.c,
			EnergyE: e,
		}
		r.PerProc = append(r.PerProc, pr)
		if i == 0 || c.start < r.Start {
			r.Start = c.start
		}
		if c.end > r.End {
			r.End = c.end
		}
		r.Ops.Add(c.c)
		r.EnergyE += e
	}
	return r
}

// T returns the group execution time (max over members).
func (r GroupReport) T() sim.Time { return r.End - r.Start }

// E returns the group energy (sum over members).
func (r GroupReport) E() float64 { return r.EnergyE }

// Power returns the mean group power E/T.
func (r GroupReport) Power() float64 { return r.Energy().Power() }

// Energy returns the (D, E) pair with the derived §2.1 metrics.
func (r GroupReport) Energy() energy.Report {
	return energy.Report{D: r.T(), E: r.EnergyE}
}

// PowerPerCore returns mean power dissipated per core by this group's
// members, keyed by global core index — the quantity checked against
// the paper's per-processor power envelope.
func (r GroupReport) PowerPerCore(cfg machine.Config, costs machine.CostTable) map[int]float64 {
	t := r.T()
	out := make(map[int]float64)
	if t == 0 {
		return out
	}
	for _, p := range r.PerProc {
		out[cfg.CoreOf(p.Thread)] += p.EnergyE / float64(t)
	}
	return out
}

// String renders a one-line summary.
func (r GroupReport) String() string {
	return fmt.Sprintf("%s %v n=%d %v", r.Name, r.Attrs, r.N, r.Energy())
}

// RoundStats is the group-level aggregate of one (unit, round) position
// across members: the paper's T_S-round is the max over the parallel
// processes; E_S-round sums.
type RoundStats struct {
	Unit, Round int
	MaxT        sim.Time
	SumE        float64
	Count       int // members that executed this round
}

// RoundStats aggregates round (unit, round) across the group.
func (g *Group) RoundStats(unit, round int) RoundStats {
	costs := g.sys.M.Cfg.Costs
	rs := RoundStats{Unit: unit, Round: round}
	for _, c := range g.ctxs {
		for _, rec := range c.rounds {
			if rec.Unit == unit && rec.Round == round {
				if t := rec.T(); t > rs.MaxT {
					rs.MaxT = t
				}
				rs.SumE += energy.EnergyScaled(rec.Ops, costs, c.computeEnergyScale())
				rs.Count++
			}
		}
	}
	return rs
}

// UnitStats aggregates S-unit number unit across the group: max T,
// summed E.
func (g *Group) UnitStats(unit int) RoundStats {
	costs := g.sys.M.Cfg.Costs
	rs := RoundStats{Unit: unit, Round: -1}
	for _, c := range g.ctxs {
		for _, rec := range c.units {
			if rec.Index == unit {
				if t := rec.T(); t > rs.MaxT {
					rs.MaxT = t
				}
				rs.SumE += energy.EnergyScaled(rec.Ops, costs, c.computeEnergyScale())
				rs.Count++
			}
		}
	}
	return rs
}

// MaxRounds returns the largest per-process round count in the group.
func (g *Group) MaxRounds() int {
	max := 0
	for _, c := range g.ctxs {
		if len(c.rounds) > max {
			max = len(c.rounds)
		}
	}
	return max
}

// MaxUnits returns the largest per-process S-unit count in the group.
func (g *Group) MaxUnits() int {
	max := 0
	for _, c := range g.ctxs {
		if len(c.units) > max {
			max = len(c.units)
		}
	}
	return max
}

// Table renders per-process rows for harness output.
func (r GroupReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "group %s %v\n", r.Name, r.Attrs)
	fmt.Fprintf(&b, "%6s %7s %10s %12s %10s\n", "proc", "thread", "T", "E", "P")
	for _, p := range r.PerProc {
		rep := energy.Report{D: p.T(), E: p.EnergyE}
		fmt.Fprintf(&b, "%6d %7d %10d %12.1f %10.3f\n", p.Index, p.Thread, p.T(), p.EnergyE, rep.Power())
	}
	fmt.Fprintf(&b, "%6s %7s %10d %12.1f %10.3f\n", "group", "-", r.T(), r.EnergyE, r.Power())
	return b.String()
}
