package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/trace"
)

func TestAttrsStrings(t *testing.T) {
	a := Attrs{Dist: IntraProc, Exec: AsyncExec, Comm: SynchComm}
	if got := a.String(); got != "[intra_proc, async_exec, synch_comm]" {
		t.Fatalf("attrs string %q", got)
	}
	b := Attrs{Dist: InterProc, Exec: TransExec, Comm: AsyncComm}
	if got := b.String(); got != "[inter_proc, trans_exec, async_comm]" {
		t.Fatalf("attrs string %q", got)
	}
}

func TestTable1HasFourDistinctCombos(t *testing.T) {
	combos := Table1(IntraProc)
	if len(combos) != 4 {
		t.Fatalf("table 1 has %d combos", len(combos))
	}
	seen := map[string]bool{}
	for _, a := range combos {
		if seen[a.String()] {
			t.Fatalf("duplicate combo %v", a)
		}
		seen[a.String()] = true
	}
}

func TestIntraPlacementPacksOneCore(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	pl := sys.PlaceGroup(IntraProc, 4)
	for i, th := range pl {
		if sys.M.Cfg.CoreOf(th) != 0 {
			t.Fatalf("intra placement member %d on core %d", i, sys.M.Cfg.CoreOf(th))
		}
	}
}

func TestInterPlacementSpreadsCores(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	pl := sys.PlaceGroup(InterProc, 8)
	cores := map[int]bool{}
	for _, th := range pl {
		cores[sys.M.Cfg.CoreOf(th)] = true
	}
	if len(cores) != 8 {
		t.Fatalf("inter placement used %d cores, want 8", len(cores))
	}
}

func TestPlacementOversubscriptionWraps(t *testing.T) {
	sys := NewSystem(machine.SingleCore())
	pl := sys.PlaceGroup(InterProc, 3)
	for _, th := range pl {
		if th != 0 {
			t.Fatalf("single-core placement chose thread %d", th)
		}
	}
}

func TestFpIntOpsChargeTimeAndCount(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	g := sys.NewGroup("k", Attrs{}, 1, func(ctx *Ctx) {
		ctx.FpOps(10)
		ctx.IntOps(5)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	r := g.Report()
	if r.Ops.FpOps != 10 || r.Ops.IntOps != 5 {
		t.Fatalf("counters fp=%d int=%d", r.Ops.FpOps, r.Ops.IntOps)
	}
	if r.T() != 15 { // TFp = TInt = 1
		t.Fatalf("T = %d, want 15", r.T())
	}
	// E = 10·w_fp + 5·w_int = 10·2 + 5·1 = 25
	if r.E() != 25 {
		t.Fatalf("E = %g, want 25", r.E())
	}
}

func TestSynchCommRoundsBarrier(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	attrs := Attrs{Dist: IntraProc, Exec: AsyncExec, Comm: SynchComm}
	var ends []sim.Time
	g := sys.NewGroup("jac", attrs, 4, func(ctx *Ctx) {
		ctx.SRound(func() {
			ctx.IntOps(int64(10 * (ctx.Index() + 1))) // skewed work
		})
		ends = append(ends, ctx.Now())
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range ends {
		if e != 40 {
			t.Fatalf("synch_comm round ended at %v, want all at 40", ends)
		}
	}
	rs := g.RoundStats(0, 0)
	if rs.Count != 4 || rs.MaxT != 40 {
		t.Fatalf("round stats %+v", rs)
	}
}

func TestAsyncCommRoundsDoNotBarrier(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	attrs := Attrs{Dist: InterProc, Exec: AsyncExec, Comm: AsyncComm}
	var ends []sim.Time
	sys.NewGroup("apsp", attrs, 4, func(ctx *Ctx) {
		ctx.SRound(func() {
			ctx.IntOps(int64(10 * (ctx.Index() + 1)))
		})
		ends = append(ends, ctx.Now())
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	distinct := map[sim.Time]bool{}
	for _, e := range ends {
		distinct[e] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("async rounds synchronized anyway: %v", ends)
	}
}

func TestSUnitRecordsRoundsAndOutsideWork(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	g := sys.NewGroup("u", Attrs{Comm: AsyncComm}, 1, func(ctx *Ctx) {
		ctx.SUnit(func() {
			ctx.IntOps(2) // T_c: local computation outside rounds
			ctx.SRound(func() { ctx.FpOps(5) })
			ctx.SRound(func() { ctx.FpOps(7) })
			ctx.IntOps(1)
		})
		ctx.SUnit(func() {
			ctx.SRound(func() { ctx.IntOps(3) })
		})
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	c := g.Ctxs()[0]
	if len(c.Units()) != 2 {
		t.Fatalf("units = %d, want 2", len(c.Units()))
	}
	u0 := c.Units()[0]
	if u0.Rounds != 2 {
		t.Fatalf("unit 0 rounds = %d, want 2", u0.Rounds)
	}
	if u0.T() != 15 { // 2 + 5 + 7 + 1
		t.Fatalf("unit 0 T = %d, want 15", u0.T())
	}
	if u0.Ops.FpOps != 12 || u0.Ops.IntOps != 3 {
		t.Fatalf("unit 0 ops %+v", u0.Ops)
	}
	if g.MaxUnits() != 2 || g.MaxRounds() != 3 {
		t.Fatalf("max units %d rounds %d", g.MaxUnits(), g.MaxRounds())
	}
	// T_S-unit = Σ T_S-round + T_c (rule 2).
	var roundT sim.Time
	for _, r := range c.Rounds() {
		if r.Unit == 0 {
			roundT += r.T()
		}
	}
	if u0.T() != roundT+3 {
		t.Fatalf("unit T %d != rounds %d + outside 3", u0.T(), roundT)
	}
}

func TestNestedSUnitPanics(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	sys.NewGroup("bad", Attrs{}, 1, func(ctx *Ctx) {
		ctx.SUnit(func() { ctx.SUnit(func() {}) })
	})
	if err := sys.Run(); err == nil {
		t.Fatal("nested S-unit did not error")
	}
}

func TestNestedSRoundPanics(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	sys.NewGroup("bad", Attrs{Comm: AsyncComm}, 1, func(ctx *Ctx) {
		ctx.SRound(func() { ctx.SRound(func() {}) })
	})
	if err := sys.Run(); err == nil {
		t.Fatal("nested S-round did not error")
	}
}

func TestGroupReportMaxSumRule(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	g := sys.NewGroup("r5", Attrs{Comm: AsyncComm}, 3, func(ctx *Ctx) {
		ctx.IntOps(int64(100 * (ctx.Index() + 1)))
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	r := g.Report()
	if r.T() != 300 { // max member time
		t.Fatalf("group T = %d, want 300", r.T())
	}
	if r.E() != 600 { // sum: (100+200+300)·w_int
		t.Fatalf("group E = %g, want 600", r.E())
	}
	if r.Power() != 2 {
		t.Fatalf("group P = %g, want 2", r.Power())
	}
	if len(r.PerProc) != 3 {
		t.Fatalf("per-proc entries %d", len(r.PerProc))
	}
}

func TestMessagingWithinGroup(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	attrs := Attrs{Dist: IntraProc, Comm: AsyncComm}
	g := sys.NewGroup("ring", attrs, 4, func(ctx *Ctx) {
		next := (ctx.Index() + 1) % ctx.GroupSize()
		ctx.SendTo(next, ctx.Index())
		m := ctx.Recv()
		want := (ctx.Index() + 3) % 4
		if m.Payload != want {
			t.Errorf("proc %d got %v, want %d", ctx.Index(), m.Payload, want)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	r := g.Report()
	if r.Ops.Sends() != 4 || r.Ops.Recvs() != 4 {
		t.Fatalf("message counts sends=%d recvs=%d", r.Ops.Sends(), r.Ops.Recvs())
	}
	// intra_proc on one core → all messaging counted intra.
	if r.Ops.SendsInter != 0 {
		t.Fatalf("intra group sent %d inter messages", r.Ops.SendsInter)
	}
}

func TestSynchCommSendBlocksForDelivery(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	attrs := Attrs{Dist: InterProc, Comm: SynchComm}
	var senderDone sim.Time
	sys.NewGroup("sync", attrs, 2, func(ctx *Ctx) {
		if ctx.Index() == 0 {
			ctx.SendTo(1, "x")
			senderDone = ctx.Now()
		} else {
			ctx.Recv()
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if senderDone < machine.Niagara().Costs.LE {
		t.Fatalf("synch_comm send returned at %d before L_e", senderDone)
	}
}

func TestBroadcastAll(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	sys.NewGroup("bc", Attrs{Comm: AsyncComm}, 5, func(ctx *Ctx) {
		ctx.BroadcastAll(ctx.Index())
		got := ctx.RecvN(4)
		if len(got) != 4 {
			t.Errorf("proc %d received %d", ctx.Index(), len(got))
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitBarrier(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	var after []sim.Time
	sys.NewGroup("b", Attrs{Comm: AsyncComm}, 3, func(ctx *Ctx) {
		ctx.IntOps(int64(5 * (ctx.Index() + 1)))
		ctx.Barrier()
		after = append(after, ctx.Now())
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range after {
		if a != 15 {
			t.Fatalf("barrier release times %v", after)
		}
	}
}

func TestAtomicallyViaCtx(t *testing.T) {
	sys := NewSystem(machine.Niagara(), WithContentionManager(stm.Timestamp{}))
	v := stm.NewTVar(sys.TM, "v", int64(0))
	attrs := Attrs{Dist: IntraProc, Exec: TransExec, Comm: SynchComm}
	g := sys.NewGroup("tx", attrs, 8, func(ctx *Ctx) {
		_, err := ctx.Atomically(func(tx *stm.Tx) error {
			v.Modify(tx, func(x int64) int64 { return x + 1 })
			return nil
		})
		if err != nil {
			t.Errorf("tx: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 8 {
		t.Fatalf("counter %d, want 8", v.Value())
	}
	if g.Report().Ops.TxCommits != 8 {
		t.Fatalf("commits %d", g.Report().Ops.TxCommits)
	}
}

func TestNestedGroupAwait(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	var childDone, parentResumed sim.Time
	sys.NewGroup("parent", Attrs{}, 1, func(ctx *Ctx) {
		ctx.IntOps(5)
		child := sys.NewGroup("child", Attrs{Dist: InterProc, Comm: AsyncComm}, 3, func(c *Ctx) {
			c.IntOps(20)
			childDone = c.Now()
		})
		child.Await(ctx)
		parentResumed = ctx.Now()
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if parentResumed < childDone || childDone == 0 {
		t.Fatalf("parent resumed at %d, child done at %d", parentResumed, childDone)
	}
}

func TestWithPlacementOverride(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	pl := Placement{7, 11}
	g := sys.NewGroupOpts("pl", Attrs{Comm: AsyncComm}, 2, func(ctx *Ctx) {}, WithPlacement(pl))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	r := g.Report()
	if r.PerProc[0].Thread != 7 || r.PerProc[1].Thread != 11 {
		t.Fatalf("placement not honored: %v", r.PerProc)
	}
}

func TestWithPlacementSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad placement size")
		}
	}()
	sys := NewSystem(machine.Niagara())
	sys.NewGroupOpts("bad", Attrs{}, 3, func(ctx *Ctx) {}, WithPlacement(Placement{0}))
}

func TestPowerPerCore(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	attrs := Attrs{Dist: IntraProc, Comm: AsyncComm}
	g := sys.NewGroup("pw", attrs, 4, func(ctx *Ctx) {
		ctx.IntOps(100)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	r := g.Report()
	pc := r.PowerPerCore(sys.M.Cfg, sys.M.Cfg.Costs)
	if len(pc) != 1 {
		t.Fatalf("intra group dissipates on %d cores", len(pc))
	}
	// 4 procs × 100 int ops × w_int=1 over T=100 → P = 4 on core 0.
	if pc[0] != 4 {
		t.Fatalf("core power %g, want 4", pc[0])
	}
}

func TestThreadsPerCoreUsed(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	g := sys.NewGroup("tc", Attrs{Dist: InterProc, Comm: AsyncComm}, 10, func(ctx *Ctx) {})
	counts := g.ThreadsPerCoreUsed()
	// 10 across 8 cores round-robin: two cores get 2, six get 1.
	twos, ones := 0, 0
	for _, n := range counts {
		switch n {
		case 2:
			twos++
		case 1:
			ones++
		default:
			t.Fatalf("unexpected per-core count %d", n)
		}
	}
	if twos != 2 || ones != 6 {
		t.Fatalf("distribution: twos=%d ones=%d", twos, ones)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReportTableRenders(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	g := sys.NewGroup("tbl", Attrs{Comm: AsyncComm}, 2, func(ctx *Ctx) { ctx.IntOps(1) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	s := g.Report().Table()
	if !strings.Contains(s, "group tbl") || !strings.Contains(s, "thread") {
		t.Fatalf("table output:\n%s", s)
	}
}

func TestGroupAccessors(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	attrs := Attrs{Dist: InterProc, Exec: TransExec, Comm: AsyncComm}
	g := sys.NewGroup("acc", attrs, 3, func(ctx *Ctx) {
		if ctx.GroupSize() != 3 {
			t.Errorf("GroupSize = %d", ctx.GroupSize())
		}
		if ctx.Group().Name() != "acc" {
			t.Errorf("group name %q", ctx.Group().Name())
		}
		if ctx.System() != sys {
			t.Error("wrong system")
		}
	})
	if g.Attrs() != attrs || g.Size() != 3 || len(g.Ctxs()) != 3 || len(g.Placement()) != 3 {
		t.Fatal("group accessors wrong")
	}
	if len(sys.Groups()) != 1 {
		t.Fatal("system group registry wrong")
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousCoresScaleComputeTime(t *testing.T) {
	cfg := machine.BigLittle(1, 2, 0.5) // core 0 at 2×, others at 0.5×
	sys := NewSystem(cfg)
	var bigT, littleT sim.Time
	g := sys.NewGroupOpts("het", Attrs{Comm: AsyncComm}, 2, func(ctx *Ctx) {
		ctx.IntOps(100)
		if ctx.Index() == 0 {
			bigT = ctx.Now()
		} else {
			littleT = ctx.Now()
		}
	}, WithPlacement(Placement{0, 4})) // core 0 (big) and core 1 (little)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if bigT != 50 {
		t.Fatalf("big-core time %d, want 50", bigT)
	}
	if littleT != 200 {
		t.Fatalf("little-core time %d, want 200", littleT)
	}
	rep := g.Report()
	// Energy: big core pays 4× per op, little 0.25×.
	if rep.PerProc[0].EnergyE != 400 || rep.PerProc[1].EnergyE != 25 {
		t.Fatalf("energies %g/%g, want 400/25",
			rep.PerProc[0].EnergyE, rep.PerProc[1].EnergyE)
	}
}

func TestHeterogeneousPowerLawPerCore(t *testing.T) {
	// Per-core power of pure compute follows mult³.
	cfg := machine.BigLittle(1, 2, 1)
	sys := NewSystem(cfg)
	g := sys.NewGroupOpts("p", Attrs{Comm: AsyncComm}, 2, func(ctx *Ctx) {
		ctx.IntOps(64)
	}, WithPlacement(Placement{0, 4}))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep := g.Report()
	big := rep.PerProc[0]
	little := rep.PerProc[1]
	bigP := big.EnergyE / float64(big.T())
	littleP := little.EnergyE / float64(little.T())
	if bigP != littleP*8 {
		t.Fatalf("power ratio %g, want 8 (2³)", bigP/littleP)
	}
}

func TestTracerRecordsExecution(t *testing.T) {
	rec := trace.New(0)
	sys := NewSystem(machine.Niagara(), WithTracer(rec))
	attrs := Attrs{Dist: IntraProc, Exec: TransExec, Comm: SynchComm}
	v := stm.NewTVar(sys.TM, "v", int64(0))
	sys.NewGroup("traced", attrs, 2, func(ctx *Ctx) {
		ctx.SUnit(func() {
			ctx.SRound(func() {
				ctx.IntOps(int64(3 * (ctx.Index() + 1)))
				ctx.SendTo(1-ctx.Index(), "hi")
			})
		})
		ctx.Recv()
		if _, err := ctx.Atomically(func(tx *stm.Tx) error {
			v.Modify(tx, func(x int64) int64 { return x + 1 })
			return nil
		}); err != nil {
			t.Error(err)
		}
		ctx.Trace("done")
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	counts := rec.ByKind()
	if counts[trace.RoundStart] != 2 || counts[trace.RoundEnd] != 2 {
		t.Fatalf("round events: %v", counts)
	}
	if counts[trace.UnitStart] != 2 || counts[trace.UnitEnd] != 2 {
		t.Fatalf("unit events: %v", counts)
	}
	if counts[trace.Send] != 2 || counts[trace.Recv] != 2 {
		t.Fatalf("comm events: %v", counts)
	}
	if counts[trace.TxCommit] != 2 {
		t.Fatalf("tx events: %v", counts)
	}
	if counts[trace.Custom] != 2 {
		t.Fatalf("custom events: %v", counts)
	}
	// Skewed work → the faster process waits at the round barrier.
	if counts[trace.BarrierWait] == 0 {
		t.Fatal("no barrier wait recorded despite skew")
	}
	if rec.Timeline(40) == "" || rec.Log() == "" {
		t.Fatal("renderings empty")
	}
}

func TestNoTracerNoOverheadPath(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	sys.NewGroup("plain", Attrs{Comm: AsyncComm}, 1, func(ctx *Ctx) {
		ctx.SRound(func() { ctx.IntOps(1) })
		ctx.Trace("ignored")
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Tracer.Enabled() {
		t.Fatal("tracer enabled by default")
	}
}

func TestCtxAtomicallyWaitAndOrElse(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	flag := stm.NewTVar(sys.TM, "flag", int64(0))
	alt := stm.NewTVar(sys.TM, "alt", int64(3))
	var got int64
	sys.NewGroup("waiter", Attrs{Comm: AsyncComm}, 1, func(ctx *Ctx) {
		if _, err := ctx.AtomicallyWait(func(tx *stm.Tx) error {
			if flag.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		}); err != nil {
			t.Error(err)
		}
		if _, err := ctx.AtomicallyOrElse(
			func(tx *stm.Tx) error { tx.Retry(); return nil },
			func(tx *stm.Tx) error { got = alt.Get(tx); return nil },
		); err != nil {
			t.Error(err)
		}
	})
	sys.NewGroup("setter", Attrs{Comm: AsyncComm}, 1, func(ctx *Ctx) {
		ctx.IntOps(30)
		if _, err := ctx.Atomically(func(tx *stm.Tx) error {
			flag.Set(tx, 1)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("orelse fallback got %d", got)
	}
}
