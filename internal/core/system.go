// Package core implements the STAMP algorithmic model itself: processes
// with the paper's attribute axes (distribution, execution,
// communication), structured into S-units and S-rounds, executing over
// the simulated CMP/CMT machine with full time/energy/power accounting
// per the complexity rules of §3.1.
package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/msgpass"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/trace"
)

// DisableSharding forces every System onto a single sequential kernel
// even when sharding is requested — the escape hatch mirroring
// sim.Kernel.DisableFastPath and GoroutineBodies: equivalence tests
// run the same workload both ways and compare bit-for-bit, and it
// isolates the sharded scheduler while debugging.
var DisableSharding bool

// DefaultShards and DefaultShardWorkers, when DefaultShards > 1, make
// NewSystem build sharded systems (clamped to the chip count) without
// touching call sites — how the experiment golden matrix and the
// racedet/ckpt fuzz suites run the entire existing corpus under the
// sharded kernel. Zero values (the default) build plain sequential
// systems.
var (
	DefaultShards       int
	DefaultShardWorkers int
)

// System bundles one simulated machine with its substrates: queued
// shared memory, the message-passing network and the transactional
// memory. STAMP process groups are spawned on a System.
type System struct {
	K   *sim.Kernel
	M   *machine.Machine
	Mem *memory.Memory
	Net *msgpass.Network
	TM  *stm.STM

	// SG is the shard group driving a sharded system (nil when the
	// system runs on one sequential kernel). K is always shard 0, the
	// coordinator: groups without a ShardByPlacement opt-in, and all
	// shared-memory and STM traffic, live there.
	SG *sim.ShardGroup

	// Tracer, when non-nil, records structured execution events
	// (S-round boundaries, communication, transaction outcomes).
	Tracer *trace.Recorder

	// Obs, when non-nil, carries the observability sinks (metrics
	// registry, span tracer, virtual-time profiler). Every sink is
	// independently optional and its nil form is a no-op.
	Obs *obs.Observer

	groups []*Group
}

// Option configures a System.
type Option func(*System)

// WithContentionManager selects the STM contention manager (default
// Passive).
func WithContentionManager(m stm.ContentionManager) Option {
	return func(s *System) { s.TM.Manager = m }
}

// WithTracer attaches an execution-event recorder.
func WithTracer(r *trace.Recorder) Option {
	return func(s *System) { s.Tracer = r }
}

// WithObs attaches an observability bundle (metrics, spans, profiler).
func WithObs(o *obs.Observer) Option {
	return func(s *System) { s.Obs = o }
}

// globalOpts are applied to every System NewSystem builds, before the
// per-call options. Process-wide tooling (stampbench -race attaching a
// detector to each experiment's system) registers here.
var globalOpts []Option

// AddGlobalOption registers an Option applied to every subsequently
// built System, before per-call options. Register before any
// simulation starts: the slice is read, unlocked, from every
// NewSystem call, including ones on parallel experiment workers. The
// returned function unregisters the option (for tests that must not
// leak it into the rest of the binary); it is idempotent, so calling
// it more than once — e.g. from both a deferred cleanup and an explicit
// teardown path — is a no-op after the first call and can never clear
// a slot a later registration has reused.
func AddGlobalOption(o Option) (remove func()) {
	globalOpts = append(globalOpts, o)
	i := len(globalOpts) - 1
	removed := false
	return func() {
		if removed {
			return
		}
		removed = true
		globalOpts[i] = nil
	}
}

// NewSystem builds a System on a fresh kernel for machine configuration
// cfg — or, when DefaultShards asks for it, a sharded system.
func NewSystem(cfg machine.Config, opts ...Option) *System {
	if !DisableSharding && DefaultShards > 1 {
		return NewShardedSystem(cfg, DefaultShards, DefaultShardWorkers, opts...)
	}
	k := sim.NewKernel()
	return finishSystem(machine.New(k, cfg), nil, opts)
}

// NewShardedSystem builds a System whose chips are partitioned over
// `shards` concurrently-advancing kernels (clamped to the chip count)
// dispatched by up to `workers` host goroutines per lookahead window.
// The lookahead is the machine's minimum cross-chip message delay
// (Config.InterChipLookahead). Results are bit-identical to the
// sequential system for any shard and worker count; DisableSharding or
// shards ≤ 1 falls back to a plain sequential system.
func NewShardedSystem(cfg machine.Config, shards, workers int, opts ...Option) *System {
	if shards > cfg.Chips {
		shards = cfg.Chips
	}
	if DisableSharding || shards <= 1 {
		k := sim.NewKernel()
		return finishSystem(machine.New(k, cfg), nil, opts)
	}
	sg := sim.NewShardGroup(shards, cfg.InterChipLookahead())
	if workers > 1 {
		sg.Workers = workers
	}
	return finishSystem(machine.NewSharded(sg, cfg), sg, opts)
}

// finishSystem assembles the substrates on machine m and applies the
// global and per-call options.
func finishSystem(m *machine.Machine, sg *sim.ShardGroup, opts []Option) *System {
	sys := &System{
		K:   m.K,
		M:   m,
		Mem: memory.New(m),
		Net: msgpass.New(m),
		TM:  stm.New(m, nil),
		SG:  sg,
	}
	for _, o := range globalOpts {
		if o != nil {
			o(sys)
		}
	}
	for _, o := range opts {
		o(sys)
	}
	return sys
}

// Run executes the simulation to completion and returns the kernel's
// (or, sharded, the shard group's) error, if any.
func (sys *System) Run() error {
	if sys.SG != nil {
		return sys.SG.Run()
	}
	return sys.K.Run()
}

// shardSafe reports whether groups may be homed on non-coordinator
// shards: the system is sharded and carries no observer that assumes
// the single-kernel discipline (structured tracer, observability
// sinks, network fault injector / race probe / delivery recorder —
// each is consulted synchronously across the whole machine and would
// race between concurrently-dispatching shards). Observers installed
// after groups are created are not seen by this check, so attach them
// before spawning work.
func (sys *System) shardSafe() bool {
	return sys.SG != nil && sys.Tracer == nil && sys.Obs == nil && sys.Net.ObserverFree()
}

// Groups returns every group spawned on the system, in creation order.
func (sys *System) Groups() []*Group { return sys.groups }

// Placement maps each group member index to a hardware thread.
type Placement []machine.ThreadID

// PlaceGroup computes the default placement of n processes under
// distribution attribute d, taking current occupancy into account:
//
//   - IntraProc packs members densely, filling every hardware thread of
//     a core before moving to the next core (minimizing inter-processor
//     communication, the paper's stated intent for intra_proc);
//   - InterProc deals members round-robin, one thread per core per
//     pass, spreading power across processors.
//
// If n exceeds the free thread count, placement wraps and oversubscribes
// (several STAMP processes may share a hardware thread).
func (sys *System) PlaceGroup(d Dist, n int) Placement {
	cfg := sys.M.Cfg
	pl := make(Placement, n)
	switch d {
	case IntraProc:
		for i := range pl {
			pl[i] = machine.ThreadID(i % cfg.NumThreads())
		}
	case InterProc:
		cores := cfg.NumCores()
		for i := range pl {
			core := i % cores
			pass := i / cores
			th := pass % cfg.ThreadsPerCore
			pl[i] = machine.ThreadID(core*cfg.ThreadsPerCore + th)
		}
	default:
		panic(fmt.Sprintf("core: unknown distribution %d", d))
	}
	return pl
}
