package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CtxSnapshot is one group member's full checkpointable execution
// state: the operation counters behind E, the fractional-carry residues
// behind deterministic charging, the S-unit/S-round position and
// per-phase measurement records, and the virtual-time profile vector.
// The simulated process itself (its goroutine stack) is NOT captured —
// checkpointing is cooperative, and the application re-enters its body
// at the recorded position on restore.
type CtxSnapshot struct {
	Index    int
	Start    sim.Time
	Counters energy.Counters
	Frac     float64
	FracCat  [obs.NumCategories]float64
	Unit     int
	Round    int
	Rounds   []RoundRec
	Units    []UnitRec
	Prof     obs.CatTimes
}

// Snapshot captures the member's charge and measurement state. It must
// be taken by the member's own process at a quiescent point — outside
// any S-unit or S-round — and flushes pending batched compute first, so
// the captured state is exactly what a fresh observer would see.
func (c *Ctx) Snapshot() CtxSnapshot {
	if c.inUnit || c.inRound {
		panic("core: Snapshot inside an S-unit or S-round")
	}
	c.flush()
	s := CtxSnapshot{
		Index: c.idx, Start: c.start, Counters: c.c,
		Frac: c.frac, FracCat: c.fracCat,
		Unit: c.unit, Round: c.round,
		Prof: c.prof.Snapshot(),
	}
	s.Rounds = append([]RoundRec(nil), c.rounds...)
	s.Units = append([]UnitRec(nil), c.units...)
	return s
}

// applyRestore overwrites the member's charge and measurement state
// from a checkpoint. Called at process activation, before the body.
func (c *Ctx) applyRestore(s *CtxSnapshot) {
	c.start = s.Start
	c.c = s.Counters
	c.frac = s.Frac
	c.fracCat = s.FracCat
	c.unit, c.round = s.Unit, s.Round
	c.rounds = append(c.rounds[:0], s.Rounds...)
	c.units = append(c.units[:0], s.Units...)
	if c.prof != nil {
		c.prof.Cats = s.Prof
	}
}

// RestoreNow overwrites the member's charge and measurement state from
// a snapshot immediately — the live-migration counterpart of
// RestoreMember's staged restore. It must be called by the member's own
// process at a quiescent point (outside any S-unit or S-round), at the
// same virtual instant the snapshot was taken: restoring across time
// would rewind T while the kernel clock runs on.
func (c *Ctx) RestoreNow(s CtxSnapshot) {
	if c.inUnit || c.inRound {
		panic("core: RestoreNow inside an S-unit or S-round")
	}
	if s.Index != c.idx {
		panic(fmt.Sprintf("core: RestoreNow on member %d with snapshot of member %d", c.idx, s.Index))
	}
	c.flush()
	c.applyRestore(&s)
}

// RestoreMember stages a checkpointed snapshot for member i: it is
// applied when the member's process activates, before its body runs.
// Call between NewGroupOpts and the system run.
func (g *Group) RestoreMember(i int, s CtxSnapshot) {
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("core: RestoreMember index %d out of range [0,%d)", i, g.n))
	}
	if s.Index != i {
		panic(fmt.Sprintf("core: RestoreMember %d given snapshot of member %d", i, s.Index))
	}
	g.ctxs[i].restoreSnap = &s
}

// BarrierGeneration returns how many times the group barrier has
// tripped.
func (g *Group) BarrierGeneration() int64 { return g.bar.Generation() }

// RestoreBarrierGeneration resets the group barrier's trip counter from
// a checkpoint (see sim.Barrier.RestoreGeneration).
func (g *Group) RestoreBarrierGeneration(gen int64) { g.bar.RestoreGeneration(gen) }
