package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/msgpass"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/trace"
)

// Ctx is the execution context of one STAMP process: it binds the
// simulated process to a hardware thread, carries the operation
// counters, and provides the structured S-unit/S-round API. Ctx
// implements the Agent interface of the memory, msgpass and stm
// substrates, so it is passed directly to their operations.
type Ctx struct {
	sys    *System
	g      *Group
	idx    int
	p      *sim.Proc
	thread machine.ThreadID
	c      energy.Counters
	frac   float64
	ep     *msgpass.Endpoint

	unit    int
	round   int
	inRound bool
	inUnit  bool

	roundStart sim.Time
	roundBase  energy.Counters
	unitStart  sim.Time
	unitBase   energy.Counters

	rounds []RoundRec
	units  []UnitRec

	start, end sim.Time
}

// RoundRec is the measured cost of one S-round of one process:
// its T_S-round and the operation deltas that determine E_S-round.
type RoundRec struct {
	Unit  int // S-unit index the round belongs to
	Round int // round index within the process
	Start sim.Time
	End   sim.Time
	Ops   energy.Counters
}

// T returns the round's measured execution time.
func (r RoundRec) T() sim.Time { return r.End - r.Start }

// UnitRec is the measured cost of one S-unit of one process.
type UnitRec struct {
	Index  int
	Start  sim.Time
	End    sim.Time
	Rounds int
	Ops    energy.Counters
}

// T returns the unit's measured execution time.
func (u UnitRec) T() sim.Time { return u.End - u.Start }

// --- identity -------------------------------------------------------

// Index returns the process's rank within its group, in [0, GroupSize).
func (c *Ctx) Index() int { return c.idx }

// GroupSize returns the number of processes in the group.
func (c *Ctx) GroupSize() int { return c.g.n }

// Group returns the owning group.
func (c *Ctx) Group() *Group { return c.g }

// System returns the owning system.
func (c *Ctx) System() *System { return c.sys }

// Proc returns the simulated process (Agent interface).
func (c *Ctx) Proc() *sim.Proc { return c.p }

// Thread returns the bound hardware thread (Agent interface).
func (c *Ctx) Thread() machine.ThreadID { return c.thread }

// Counters returns the process's counters (Agent interface).
func (c *Ctx) Counters() *energy.Counters { return &c.c }

// Endpoint returns the process's message-passing mailbox.
func (c *Ctx) Endpoint() *msgpass.Endpoint { return c.ep }

// Now returns the current virtual time.
func (c *Ctx) Now() sim.Time { return c.p.Now() }

// --- local computation ----------------------------------------------

// HoldCost charges fractional virtual time with deterministic carry
// (Agent interface).
func (c *Ctx) HoldCost(ticks float64) {
	if ticks < 0 {
		panic("core: negative cost")
	}
	c.frac += ticks
	if c.frac >= 1 {
		n := sim.Time(c.frac)
		c.frac -= float64(n)
		c.p.Hold(n)
	}
}

// FpOps performs n local floating-point operations: advances time by
// n·t_fp (scaled by the core's clock multiplier on heterogeneous
// machines) and counts c_fp.
func (c *Ctx) FpOps(n int64) {
	if n < 0 {
		panic("core: negative op count")
	}
	c.c.FpOps += n
	c.holdCompute(n, c.sys.M.Cfg.Costs.TFp)
}

// IntOps performs n local integer operations: advances time by n·t_int
// (core-clock scaled) and counts c_int.
func (c *Ctx) IntOps(n int64) {
	if n < 0 {
		panic("core: negative op count")
	}
	c.c.IntOps += n
	c.holdCompute(n, c.sys.M.Cfg.Costs.TInt)
}

// holdCompute charges n local ops of base latency t, honoring the
// core's frequency multiplier. The homogeneous fast path holds whole
// ticks exactly; heterogeneous cores accumulate fractional ticks.
func (c *Ctx) holdCompute(n int64, t sim.Time) {
	cfg := c.sys.M.Cfg
	core := cfg.CoreOf(c.thread)
	if mult := cfg.CoreMult(core); mult != 1 {
		c.HoldCost(cfg.ComputeTime(core, n, float64(t)))
		return
	}
	c.p.Hold(sim.Time(n) * t)
}

// computeEnergyScale returns the per-op energy multiplier of this
// process's core.
func (c *Ctx) computeEnergyScale() float64 {
	return c.sys.M.Cfg.ComputeEnergyScale(c.sys.M.Cfg.CoreOf(c.thread))
}

// LocalOps performs a mixed batch of local computation.
func (c *Ctx) LocalOps(fp, integer int64) {
	c.FpOps(fp)
	c.IntOps(integer)
}

// --- S-unit / S-round structure --------------------------------------

// SUnit runs fn as one S-unit: a minimal sequential phase made of
// S-rounds plus local computation outside rounds. Units may not nest.
func (c *Ctx) SUnit(fn func()) {
	if c.inUnit {
		panic("core: S-units may not nest (an S-unit is a minimal sequential process)")
	}
	c.inUnit = true
	c.unitStart = c.p.Now()
	c.unitBase = c.c
	c.traceEvent(trace.UnitStart, fmt.Sprintf("unit %d", c.unit))
	roundsBefore := len(c.rounds)
	fn()
	rec := UnitRec{
		Index:  c.unit,
		Start:  c.unitStart,
		End:    c.p.Now(),
		Rounds: len(c.rounds) - roundsBefore,
	}
	rec.Ops = c.c
	rec.Ops.SubFrom(c.unitBase)
	c.units = append(c.units, rec)
	c.traceEvent(trace.UnitEnd, fmt.Sprintf("unit %d", c.unit))
	c.unit++
	c.inUnit = false
}

// SRound runs fn as one S-round: receive/read, local computation, then
// send/write, per the paper's round structure. Under synch_comm the
// group barriers at the end of the round (the Jacobi example's
// "implicit barrier synchronization"); the barrier wait is part of the
// round's measured time.
func (c *Ctx) SRound(fn func()) {
	if c.inRound {
		panic("core: S-rounds may not nest")
	}
	c.inRound = true
	c.roundStart = c.p.Now()
	c.roundBase = c.c
	c.traceEvent(trace.RoundStart, fmt.Sprintf("round %d", c.round))
	fn()
	if c.g.attrs.Comm == SynchComm && c.g.n > 1 {
		before := c.p.Now()
		c.g.bar.Await(c.p)
		if wait := c.p.Now() - before; wait > 0 {
			c.traceEvent(trace.BarrierWait, fmt.Sprintf("waited %d", wait))
		}
	}
	rec := RoundRec{
		Unit:  c.unit,
		Round: c.round,
		Start: c.roundStart,
		End:   c.p.Now(),
	}
	rec.Ops = c.c
	rec.Ops.SubFrom(c.roundBase)
	c.rounds = append(c.rounds, rec)
	c.traceEvent(trace.RoundEnd, fmt.Sprintf("round %d", c.round))
	c.round++
	c.inRound = false
}

// Rounds returns the per-round measurements recorded so far.
func (c *Ctx) Rounds() []RoundRec { return c.rounds }

// Units returns the per-unit measurements recorded so far.
func (c *Ctx) Units() []UnitRec { return c.units }

// Barrier blocks until every group member reaches it (explicit
// synchronization for async_comm algorithms that need one).
func (c *Ctx) Barrier() {
	if c.g.n > 1 {
		c.g.bar.Await(c.p)
	}
}

// --- communication helpers -------------------------------------------

// Peer returns group member j's mailbox.
func (c *Ctx) Peer(j int) *msgpass.Endpoint {
	if j < 0 || j >= c.g.n {
		panic(fmt.Sprintf("core: peer index %d out of range [0,%d)", j, c.g.n))
	}
	return c.g.ctxs[j].ep
}

// SendTo sends payload to group member j. Under synch_comm the send
// blocks until delivery; under async_comm it is fire-and-forget.
func (c *Ctx) SendTo(j int, payload any) {
	dst := c.Peer(j)
	c.traceEvent(trace.Send, "to "+dst.Name())
	if c.g.attrs.Comm == SynchComm {
		c.ep.SendSync(c, dst, payload)
	} else {
		c.ep.Send(c, dst, payload)
	}
}

// Recv blocks until a message addressed to this process arrives and
// returns it.
func (c *Ctx) Recv() msgpass.Message {
	m := c.ep.Recv(c)
	if m.From != nil {
		c.traceEvent(trace.Recv, "from "+m.From.Name())
	}
	return m
}

// RecvN receives exactly n messages.
func (c *Ctx) RecvN(n int) []msgpass.Message { return c.ep.RecvN(c, n) }

// BroadcastAll sends payload to every other group member (asynchronous
// injection regardless of the comm attribute; synch_comm algorithms
// follow a broadcast with a barrier, as in the Jacobi example).
func (c *Ctx) BroadcastAll(payload any) {
	for j := 0; j < c.g.n; j++ {
		if j == c.idx {
			continue
		}
		c.ep.Send(c, c.g.ctxs[j].ep, payload)
	}
}

// --- transactional execution -----------------------------------------

// Atomically runs body as a transaction on the system's STM (the
// trans_exec attribute's realization).
func (c *Ctx) Atomically(body func(tx *stm.Tx) error) (stm.Outcome, error) {
	out, err := c.sys.TM.Atomically(c, body)
	if c.sys.Tracer.Enabled() {
		if out.Committed {
			c.traceEvent(trace.TxCommit, fmt.Sprintf("attempts %d", out.Attempts))
		} else {
			c.traceEvent(trace.TxAbort, fmt.Sprintf("attempts %d err %v", out.Attempts, err))
		}
	}
	return out, err
}

// AtomicallyWait is Atomically with Retry support: a body that calls
// tx.Retry() blocks this process until another transaction commits,
// then re-executes.
func (c *Ctx) AtomicallyWait(body func(tx *stm.Tx) error) (stm.Outcome, error) {
	out, err := c.sys.TM.AtomicallyWait(c, body)
	if c.sys.Tracer.Enabled() {
		if out.Committed {
			c.traceEvent(trace.TxCommit, fmt.Sprintf("attempts %d", out.Attempts))
		} else {
			c.traceEvent(trace.TxAbort, fmt.Sprintf("attempts %d err %v", out.Attempts, err))
		}
	}
	return out, err
}

// AtomicallyOrElse composes two alternatives: if first retries, second
// runs; if both retry, the process blocks until a commit.
func (c *Ctx) AtomicallyOrElse(first, second func(tx *stm.Tx) error) (stm.Outcome, error) {
	return c.sys.TM.AtomicallyOrElse(c, first, second)
}

// traceEvent records an event when tracing is enabled.
func (c *Ctx) traceEvent(k trace.Kind, detail string) {
	if c.sys.Tracer.Enabled() {
		c.sys.Tracer.Record(c.p.Now(), c.p.Name(), k, detail)
	}
}

// Trace records a custom application event when tracing is enabled.
func (c *Ctx) Trace(detail string) { c.traceEvent(trace.Custom, detail) }
