package core

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/msgpass"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/trace"
)

// Ctx is the execution context of one STAMP process: it binds the
// simulated process to a hardware thread, carries the operation
// counters, and provides the structured S-unit/S-round API. Ctx
// implements the Agent interface of the memory, msgpass and stm
// substrates, so it is passed directly to their operations.
type Ctx struct {
	sys    *System
	g      *Group
	idx    int
	p      *sim.Proc
	thread machine.ThreadID
	c      energy.Counters
	frac   float64
	// fracCat is the per-category fractional-tick carry behind
	// ChargeCost. Keeping one carry per profile category means the
	// fractional residue of, say, a bandwidth charge can never
	// materialize inside — and be misattributed to — a later charge of
	// an unrelated category.
	fracCat [obs.NumCategories]float64
	ep      *msgpass.Endpoint

	unit    int
	round   int
	inRound bool
	inUnit  bool

	// pend is compute time charged by FpOps/IntOps/LocalOps but not yet
	// materialized as a kernel Hold. Batching is only ever started or
	// extended when sim.Proc.CanCoalesce says no other event is
	// scheduled inside the pending window — no simulation state can
	// change while pend > 0, so deferring is invisible — and every
	// observation point (Now, Proc, HoldCost, and through them all
	// memory/msgpass/stm operations) flushes first.
	pend sim.Time

	roundStart sim.Time
	roundBase  energy.Counters
	unitStart  sim.Time
	unitBase   energy.Counters

	rounds []RoundRec
	units  []UnitRec

	start, end sim.Time

	// restoreSnap, when non-nil, is a checkpointed member state to apply
	// at process activation, before the body runs (set via
	// Group.RestoreMember, consumed once).
	restoreSnap *CtxSnapshot

	// prof is the process's virtual-time profile (nil when profiling is
	// off; the nil profile is a no-op, keeping charged ops alloc-free).
	prof *obs.ProcProfile
	// Open causal spans, innermost last: proc ⊃ unit ⊃ round.
	procSpan, unitSpan, roundSpan obs.SpanID

	// --- step-mode driver state (see step.go) ---------------------------
	// These fields replace the stack locals a goroutine body keeps across
	// blocking points: a step body returns to the kernel at every
	// boundary, so everything that must survive a park lives here.
	stepBody    func(*Ctx) Step // member body, consumed at first activation
	stepInner   Step            // continuation to run on the next activation
	stepDriveFn sim.StepFunc    // pre-bound (*Ctx).stepDrive, allocated once
	// unitRoundsBefore replaces SUnit's roundsBefore local.
	unitRoundsBefore int
	// barBefore/stepAfterBar carry one in-progress StepBarrier; roundThen
	// carries the continuation through StepRoundEnd's implicit barrier.
	barBefore    sim.Time
	stepAfterBar Step
	roundThen    Step
	// recvBuf is the pooled message buffer StepRecvN hands to its
	// continuation; it is reused by the next StepRecvN, so callbacks must
	// not retain it (the stamplint poolsafe check enforces this).
	recvBuf  []msgpass.Message
	recvSt   msgpass.StepRecvState
	recvSpan obs.SpanID
	recvNeed int
	recvThen func([]msgpass.Message) Step
}

// RoundRec is the measured cost of one S-round of one process:
// its T_S-round and the operation deltas that determine E_S-round.
type RoundRec struct {
	Unit  int // S-unit index the round belongs to
	Round int // round index within the process
	Start sim.Time
	End   sim.Time
	Ops   energy.Counters
}

// T returns the round's measured execution time.
func (r RoundRec) T() sim.Time { return r.End - r.Start }

// UnitRec is the measured cost of one S-unit of one process.
type UnitRec struct {
	Index  int
	Start  sim.Time
	End    sim.Time
	Rounds int
	Ops    energy.Counters
}

// T returns the unit's measured execution time.
func (u UnitRec) T() sim.Time { return u.End - u.Start }

// --- identity -------------------------------------------------------

// Index returns the process's rank within its group, in [0, GroupSize).
func (c *Ctx) Index() int { return c.idx }

// GroupSize returns the number of processes in the group.
func (c *Ctx) GroupSize() int { return c.g.n }

// Group returns the owning group.
func (c *Ctx) Group() *Group { return c.g }

// System returns the owning system.
func (c *Ctx) System() *System { return c.sys }

// Proc returns the simulated process (Agent interface). Substrates take
// it to observe or advance the clock, so pending batched compute time is
// materialized first.
func (c *Ctx) Proc() *sim.Proc {
	c.flush()
	return c.p
}

// Thread returns the bound hardware thread (Agent interface).
func (c *Ctx) Thread() machine.ThreadID { return c.thread }

// Counters returns the process's counters (Agent interface).
func (c *Ctx) Counters() *energy.Counters { return &c.c }

// Profile returns the process's virtual-time profile sink, nil when
// profiling is disabled (Agent interface).
func (c *Ctx) Profile() *obs.ProcProfile { return c.prof }

// tracerSpans returns the span tracer (nil when absent).
func (c *Ctx) tracerSpans() *obs.Tracer { return c.sys.Obs.Tracer() }

// spanParent returns the innermost open structural span.
func (c *Ctx) spanParent() obs.SpanID {
	if c.roundSpan != 0 {
		return c.roundSpan
	}
	if c.unitSpan != 0 {
		return c.unitSpan
	}
	return c.procSpan
}

// Endpoint returns the process's message-passing mailbox.
func (c *Ctx) Endpoint() *msgpass.Endpoint { return c.ep }

// Coordinates reports the process's position in the S-unit/S-round
// structure: the current unit and round indices and whether a unit or
// round is open. Tooling (the race detector's reports) reads this to
// locate an event in model terms; the indices count completed phases,
// so an open round's index is the one it will be recorded under.
func (c *Ctx) Coordinates() (unit, round int, inUnit, inRound bool) {
	return c.unit, c.round, c.inUnit, c.inRound
}

// CurrentSpan returns the innermost open structural span (round ⊃ unit
// ⊃ proc), or 0 when span tracing is disabled.
func (c *Ctx) CurrentSpan() obs.SpanID { return c.spanParent() }

// Now returns the current virtual time, materializing any pending
// batched compute time first.
func (c *Ctx) Now() sim.Time {
	c.flush()
	return c.p.Now()
}

// flush charges accumulated batched compute time as one kernel Hold.
// The batching invariant (pend only grows while CanCoalesce holds, and
// no other process can run in between) guarantees the Hold takes the
// coalescing fast path, so a flush never parks. A process that is
// unwinding — killed, or torn down after a kernel error — discards its
// pending ticks instead: its deferred cleanup must neither advance the
// clock nor re-enter Hold (which would panic again mid-unwind).
func (c *Ctx) flush() {
	if c.pend > 0 {
		if c.p.Unwinding() {
			c.pend = 0
			return
		}
		d := c.pend
		c.pend = 0
		c.p.Hold(d)
	}
}

// --- local computation ----------------------------------------------

// HoldCost charges fractional virtual time with deterministic carry
// (Agent interface).
func (c *Ctx) HoldCost(ticks float64) {
	if ticks < 0 {
		panic("core: negative cost")
	}
	c.flush()
	c.frac += ticks
	if c.frac >= 1 {
		n := sim.Time(c.frac)
		c.frac -= float64(n)
		c.p.Hold(n)
	}
}

// ChargeCost advances virtual time by ticks with deterministic
// per-category fractional carry and attributes the materialized whole
// ticks to cat in the virtual-time profile (Agent interface). This is
// the substrates' charging primitive: unlike HoldCost followed by a
// window measurement, the materialized ticks and the profile charge
// are the same quantity by construction, so fractional costs are
// attributed to the category that incurred them — never lost, never
// bled into a neighbouring measurement window.
func (c *Ctx) ChargeCost(cat obs.Category, ticks float64) {
	if ticks < 0 {
		panic("core: negative cost")
	}
	c.flush()
	f := c.fracCat[cat] + ticks
	if f >= 1 {
		n := sim.Time(f)
		f -= float64(n)
		c.p.Hold(n)
		c.prof.Charge(cat, n)
	}
	c.fracCat[cat] = f
}

// Kill terminates the member's simulated process (see sim.Proc.Kill),
// discarding any batched-but-unmaterialized compute time: a killed
// process charges nothing further. Safe from kernel callbacks — it
// never advances the clock.
func (c *Ctx) Kill() {
	c.pend = 0
	c.p.Kill()
}

// SimProc returns the member's simulated process without materializing
// batched compute time. Unlike Proc (the Agent-interface accessor,
// which flushes), SimProc is safe from kernel callbacks, where the
// member is not the running process; fault plans use it to inspect and
// kill processes bound to a failed core.
func (c *Ctx) SimProc() *sim.Proc { return c.p }

// FpOps performs n local floating-point operations: advances time by
// n·t_fp (scaled by the core's clock multiplier on heterogeneous
// machines) and counts c_fp.
func (c *Ctx) FpOps(n int64) {
	if n < 0 {
		panic("core: negative op count")
	}
	c.c.FpOps += n
	c.holdCompute(n, c.sys.M.Cfg.Costs.TFp)
}

// IntOps performs n local integer operations: advances time by n·t_int
// (core-clock scaled) and counts c_int.
func (c *Ctx) IntOps(n int64) {
	if n < 0 {
		panic("core: negative op count")
	}
	c.c.IntOps += n
	c.holdCompute(n, c.sys.M.Cfg.Costs.TInt)
}

// holdCompute charges n local ops of base latency t, honoring the
// core's frequency multiplier. The homogeneous fast path holds whole
// ticks exactly; heterogeneous cores accumulate fractional ticks.
//
// Consecutive charges batch into one deferred Hold (c.pend) whenever the
// kernel certifies the extended window is uncontended — the common case
// for compute-dense S-round phases, where it collapses a long run of
// FpOps/IntOps calls into a single clock advance at the next
// observation point.
func (c *Ctx) holdCompute(n int64, t sim.Time) {
	cfg := c.sys.M.Cfg
	core := cfg.CoreOf(c.thread)
	if mult := cfg.CoreMult(core); mult != 1 {
		c.ChargeCost(obs.CatCompute, cfg.ComputeTime(core, n, float64(t)))
		return
	}
	d := sim.Time(n) * t
	c.prof.Charge(obs.CatCompute, d)
	if c.p.CanCoalesce(c.pend + d) {
		c.pend += d
		return
	}
	c.pend += d
	d = c.pend
	c.pend = 0
	c.p.Hold(d)
}

// computeEnergyScale returns the per-op energy multiplier of this
// process's core.
func (c *Ctx) computeEnergyScale() float64 {
	return c.sys.M.Cfg.ComputeEnergyScale(c.sys.M.Cfg.CoreOf(c.thread))
}

// LocalOps performs a mixed batch of local computation.
func (c *Ctx) LocalOps(fp, integer int64) {
	c.FpOps(fp)
	c.IntOps(integer)
}

// --- S-unit / S-round structure --------------------------------------

// SUnit runs fn as one S-unit: a minimal sequential phase made of
// S-rounds plus local computation outside rounds. Units may not nest.
func (c *Ctx) SUnit(fn func()) {
	if c.inUnit {
		panic("core: S-units may not nest (an S-unit is a minimal sequential process)")
	}
	c.inUnit = true
	c.unitStart = c.Now()
	c.unitBase = c.c
	c.traceEvent(trace.UnitStart, fmt.Sprintf("unit %d", c.unit))
	if tr := c.tracerSpans(); tr.Enabled() {
		c.unitSpan = tr.Begin(c.unitStart, c.p.Name(), "unit", fmt.Sprintf("unit %d", c.unit), c.procSpan)
	}
	roundsBefore := len(c.rounds)
	fn()
	rec := UnitRec{
		Index:  c.unit,
		Start:  c.unitStart,
		End:    c.Now(),
		Rounds: len(c.rounds) - roundsBefore,
	}
	rec.Ops = c.c
	rec.Ops.SubFrom(c.unitBase)
	c.units = append(c.units, rec)
	c.traceEvent(trace.UnitEnd, fmt.Sprintf("unit %d", c.unit))
	c.tracerSpans().End(c.unitSpan, rec.End)
	c.unitSpan = 0
	c.unit++
	c.inUnit = false
}

// SRound runs fn as one S-round: receive/read, local computation, then
// send/write, per the paper's round structure. Under synch_comm the
// group barriers at the end of the round (the Jacobi example's
// "implicit barrier synchronization"); the barrier wait is part of the
// round's measured time.
func (c *Ctx) SRound(fn func()) {
	if c.inRound {
		panic("core: S-rounds may not nest")
	}
	c.inRound = true
	c.roundStart = c.Now()
	c.roundBase = c.c
	c.traceEvent(trace.RoundStart, fmt.Sprintf("round %d", c.round))
	if tr := c.tracerSpans(); tr.Enabled() {
		parent := c.unitSpan
		if parent == 0 {
			parent = c.procSpan
		}
		c.roundSpan = tr.Begin(c.roundStart, c.p.Name(), "round", fmt.Sprintf("round %d", c.round), parent)
	}
	fn()
	if c.g.attrs.Comm == SynchComm && c.g.n > 1 {
		c.barrierWait()
	}
	rec := RoundRec{
		Unit:  c.unit,
		Round: c.round,
		Start: c.roundStart,
		End:   c.Now(),
	}
	rec.Ops = c.c
	rec.Ops.SubFrom(c.roundBase)
	c.rounds = append(c.rounds, rec)
	c.traceEvent(trace.RoundEnd, fmt.Sprintf("round %d", c.round))
	c.tracerSpans().End(c.roundSpan, rec.End)
	c.roundSpan = 0
	c.round++
	c.inRound = false
}

// barrierWait blocks on the group barrier, attributing the wait to
// CatBarrier and recording it as a span/event when tracing. When the
// tracer is streaming, the last arriver additionally publishes the
// completed generation (EvBarrier) and the fleet-wide profiler deltas
// accumulated since the previous generation (EvProfile) — the live
// progress signal stampserve's event stream is built on.
func (c *Ctx) barrierWait() {
	before := c.Now()
	if c.g.bar.Await(c.p) {
		c.barrierTripped()
	}
	c.barrierFinish(before)
}

// barrierTripped publishes the completed barrier generation on a
// streaming tracer. Shared by the goroutine path (barrierWait) and the
// step path (StepBarrier); only the tripping arrival calls it.
func (c *Ctx) barrierTripped() {
	tr := c.tracerSpans()
	if !tr.Streaming() {
		return
	}
	gen := c.g.bar.Generation()
	now := c.p.Now()
	tr.Emit(obs.Event{At: now, Kind: obs.EvBarrier, Proc: c.p.Name(),
		Cat: "barrier", Name: "generation", Detail: c.g.name, Gen: gen})
	if pf := c.sys.Obs.Profiler(); pf.Enabled() {
		tot := pf.Totals()
		delta := tot
		for i := range delta {
			delta[i] -= c.g.profPub[i]
		}
		c.g.profPub = tot
		tr.Emit(obs.Event{At: now, Kind: obs.EvProfile, Proc: c.p.Name(),
			Cat: "profile", Name: "delta", Detail: profileDeltaDetail(delta), Gen: gen})
	}
}

// barrierFinish attributes and records the barrier wait window that
// started at before. Shared by both execution modes.
func (c *Ctx) barrierFinish(before sim.Time) {
	wait := c.Now() - before
	if wait <= 0 {
		return
	}
	c.prof.Charge(obs.CatBarrier, wait)
	c.traceEvent(trace.BarrierWait, fmt.Sprintf("waited %d", wait))
	if tr := c.tracerSpans(); tr.Enabled() {
		id := tr.Begin(before, c.p.Name(), "barrier", "barrier", c.spanParent())
		tr.End(id, before+wait)
	}
}

// profileDeltaDetail renders a category-delta vector compactly and
// deterministically: "compute=12 memwait=3 ..." in category order.
func profileDeltaDetail(d obs.CatTimes) string {
	var b []byte
	for cat := obs.Category(0); cat < obs.NumCategories; cat++ {
		if cat > 0 {
			b = append(b, ' ')
		}
		b = append(b, cat.String()...)
		b = append(b, '=')
		b = fmt.Appendf(b, "%d", d[cat])
	}
	return string(b)
}

// Rounds returns the per-round measurements recorded so far.
func (c *Ctx) Rounds() []RoundRec { return c.rounds }

// Units returns the per-unit measurements recorded so far.
func (c *Ctx) Units() []UnitRec { return c.units }

// Barrier blocks until every group member reaches it (explicit
// synchronization for async_comm algorithms that need one).
func (c *Ctx) Barrier() {
	if c.g.n > 1 {
		c.barrierWait()
	}
}

// --- communication helpers -------------------------------------------

// Peer returns group member j's mailbox.
func (c *Ctx) Peer(j int) *msgpass.Endpoint {
	if j < 0 || j >= c.g.n {
		panic(fmt.Sprintf("core: peer index %d out of range [0,%d)", j, c.g.n))
	}
	return c.g.ctxs[j].ep
}

// SendTo sends payload to group member j. Under synch_comm the send
// blocks until delivery; under async_comm it is fire-and-forget.
func (c *Ctx) SendTo(j int, payload any) {
	dst := c.Peer(j)
	if c.sys.Tracer.Enabled() {
		c.traceEvent(trace.Send, "to "+dst.Name())
	}
	if tr := c.tracerSpans(); tr.Enabled() {
		tr.Instant(c.Now(), c.p.Name(), "msg", "send", "to "+dst.Name(), c.spanParent())
	}
	if c.g.attrs.Comm == SynchComm {
		c.ep.SendSync(c, dst, payload)
	} else {
		c.ep.Send(c, dst, payload)
	}
}

// Recv blocks until a message addressed to this process arrives and
// returns it.
func (c *Ctx) Recv() msgpass.Message {
	var sp obs.SpanID
	tr := c.tracerSpans()
	if tr.Enabled() {
		sp = tr.Begin(c.Now(), c.p.Name(), "msg", "recv", c.spanParent())
	}
	m := c.ep.Recv(c)
	tr.End(sp, c.Now())
	if m.From != nil && c.sys.Tracer.Enabled() {
		c.traceEvent(trace.Recv, "from "+m.From.Name())
	}
	return m
}

// RecvN receives exactly n messages.
func (c *Ctx) RecvN(n int) []msgpass.Message {
	var sp obs.SpanID
	tr := c.tracerSpans()
	if tr.Enabled() {
		sp = tr.Begin(c.Now(), c.p.Name(), "msg", "recv", c.spanParent())
	}
	ms := c.ep.RecvN(c, n)
	tr.End(sp, c.Now())
	return ms
}

// TraceRecvFrom records the per-message receive event that Recv emits
// after the message arrives. Step drivers that replace a single Recv
// with StepRecvN(1, ...) call it first in the callback so traced runs
// stay identical between the two execution modes (RecvN and StepRecvN
// deliberately omit per-message events for batched receives).
func (c *Ctx) TraceRecvFrom(m msgpass.Message) {
	if m.From != nil && c.sys.Tracer.Enabled() {
		c.traceEvent(trace.Recv, "from "+m.From.Name())
	}
}

// BroadcastAll sends payload to every other group member (asynchronous
// injection regardless of the comm attribute; synch_comm algorithms
// follow a broadcast with a barrier, as in the Jacobi example).
func (c *Ctx) BroadcastAll(payload any) {
	if tr := c.tracerSpans(); tr.Enabled() {
		tr.Instant(c.Now(), c.p.Name(), "msg", "broadcast", fmt.Sprintf("to %d peers", c.g.n-1), c.spanParent())
	}
	for j := 0; j < c.g.n; j++ {
		if j == c.idx {
			continue
		}
		c.ep.Send(c, c.g.ctxs[j].ep, payload)
	}
}

// --- transactional execution -----------------------------------------

// requireCoordinator panics when called from a process homed on a
// non-coordinator shard: the STM (like queued shared memory) is
// machine-global serialized state, touchable only under the
// coordinator kernel's single-dispatch discipline. Shard-homed groups
// communicate by message passing.
func (c *Ctx) requireCoordinator(what string) {
	if c.g.k != c.sys.K {
		panic(fmt.Sprintf("core: %s from shard-homed group %q; STM and shared memory are coordinator-only — use message passing", what, c.g.name))
	}
}

// Atomically runs body as a transaction on the system's STM (the
// trans_exec attribute's realization).
func (c *Ctx) Atomically(body func(tx *stm.Tx) error) (stm.Outcome, error) {
	c.requireCoordinator("Atomically")
	sp := c.beginTxSpan()
	out, err := c.sys.TM.Atomically(c, body)
	c.endTxSpan(sp, out, err)
	return out, err
}

// AtomicallyWait is Atomically with Retry support: a body that calls
// tx.Retry() blocks this process until another transaction commits,
// then re-executes.
func (c *Ctx) AtomicallyWait(body func(tx *stm.Tx) error) (stm.Outcome, error) {
	c.requireCoordinator("AtomicallyWait")
	sp := c.beginTxSpan()
	out, err := c.sys.TM.AtomicallyWait(c, body)
	c.endTxSpan(sp, out, err)
	return out, err
}

// AtomicallyOrElse composes two alternatives: if first retries, second
// runs; if both retry, the process blocks until a commit.
func (c *Ctx) AtomicallyOrElse(first, second func(tx *stm.Tx) error) (stm.Outcome, error) {
	c.requireCoordinator("AtomicallyOrElse")
	sp := c.beginTxSpan()
	out, err := c.sys.TM.AtomicallyOrElse(c, first, second)
	c.endTxSpan(sp, out, err)
	return out, err
}

// beginTxSpan opens a "tx" span when span tracing is on.
func (c *Ctx) beginTxSpan() obs.SpanID {
	if tr := c.tracerSpans(); tr.Enabled() {
		return tr.Begin(c.Now(), c.p.Name(), "tx", "tx", c.spanParent())
	}
	return 0
}

// endTxSpan closes the "tx" span and records the outcome in both the
// flat event log and as a span instant.
func (c *Ctx) endTxSpan(sp obs.SpanID, out stm.Outcome, err error) {
	if c.sys.Tracer.Enabled() {
		if out.Committed {
			c.traceEvent(trace.TxCommit, fmt.Sprintf("attempts %d", out.Attempts))
		} else {
			c.traceEvent(trace.TxAbort, fmt.Sprintf("attempts %d err %v", out.Attempts, err))
		}
	}
	tr := c.tracerSpans()
	if !tr.Enabled() {
		return
	}
	now := c.Now()
	tr.End(sp, now)
	name := "commit"
	if !out.Committed {
		name = "abort"
	}
	tr.Instant(now, c.p.Name(), "tx", name, fmt.Sprintf("attempts %d", out.Attempts), sp)
}

// traceEvent records an event when tracing is enabled.
func (c *Ctx) traceEvent(k trace.Kind, detail string) {
	if c.sys.Tracer.Enabled() {
		c.sys.Tracer.Record(c.Now(), c.p.Name(), k, detail)
	}
}

// Trace records a custom application event when tracing is enabled.
func (c *Ctx) Trace(detail string) {
	c.traceEvent(trace.Custom, detail)
	if tr := c.tracerSpans(); tr.Enabled() {
		tr.Instant(c.Now(), c.p.Name(), "app", "app", detail, c.spanParent())
	}
}
