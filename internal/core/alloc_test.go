package core

import (
	"testing"

	"repro/internal/machine"
)

// With observability disabled (no WithObs), a charged op must be
// allocation-free: the instrumentation hooks all take the nil-receiver
// no-op path, the kernel stores events inline in its heap slice, and
// cost batching adds only arithmetic. Absolute zero, not a relative
// bound — the whole zero-alloc hot path is the contract.
func TestChargedOpsAllocationFreeWhenObsDisabled(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	var holdAllocs, opAllocs float64
	attrs := Attrs{Dist: IntraProc, Exec: AsyncExec, Comm: SynchComm}
	sys.NewGroup("alloc", attrs, 1, func(ctx *Ctx) {
		// Warm up lazy state (ops counters, event buffers).
		ctx.FpOps(1)
		ctx.IntOps(1)
		holdAllocs = testing.AllocsPerRun(200, func() { ctx.p.Hold(1) })
		opAllocs = testing.AllocsPerRun(200, func() { ctx.FpOps(1) })
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if holdAllocs != 0 {
		t.Fatalf("bare Hold allocates %.1f/run, want 0", holdAllocs)
	}
	if opAllocs != 0 {
		t.Fatalf("FpOps allocates %.1f/run, want 0", opAllocs)
	}
}
