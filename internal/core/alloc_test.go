package core

import (
	"testing"

	"repro/internal/machine"
)

// With observability disabled (no WithObs), a charged op must cost no
// more allocations than the bare kernel hold underneath it — the
// instrumentation hooks all take the nil-receiver no-op path. The
// kernel itself allocates one event per Hold, so we compare against
// that baseline rather than demanding an absolute zero.
func TestChargedOpsAllocationFreeWhenObsDisabled(t *testing.T) {
	sys := NewSystem(machine.Niagara())
	var holdAllocs, opAllocs float64
	attrs := Attrs{Dist: IntraProc, Exec: AsyncExec, Comm: SynchComm}
	sys.NewGroup("alloc", attrs, 1, func(ctx *Ctx) {
		// Warm up lazy state (ops counters, event buffers).
		ctx.FpOps(1)
		ctx.IntOps(1)
		holdAllocs = testing.AllocsPerRun(200, func() { ctx.p.Hold(1) })
		opAllocs = testing.AllocsPerRun(200, func() { ctx.FpOps(1) })
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if opAllocs > holdAllocs {
		t.Fatalf("FpOps allocates %.1f/run vs bare Hold %.1f/run — obs hooks are not free when disabled",
			opAllocs, holdAllocs)
	}
}
