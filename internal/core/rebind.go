package core

import (
	"fmt"

	"repro/internal/machine"
)

// Rebind moves the member's simulated process to hardware thread th —
// the mechanical half of a live migration. Machine occupancy transfers
// to the new thread, later compute charges use the new core's
// frequency multiplier, later sends and receives pay the link costs of
// the new coordinates, and the group's placement reflects the move.
// The model costs of the move itself (snapshot write plus state
// transfer, ℓ_e + w·g_sh_e each) are the caller's to charge — the
// adaptive controller (internal/adapt) pays them before rebinding so
// the migration stays analyzable in the §3.1 accounting.
//
// Rebind must be called by the member's own process at a
// barrier-consistent instant, outside any S-unit or S-round: between
// rounds every peer is parked at the same virtual time, so no message
// can be in the middle of being costed against the old coordinates.
// Messages already in flight keep the cost computed at send time, like
// a wire transfer that departed before the move.
//
// Shard-homed groups cannot rebind: their processes park on a shard
// kernel keyed by thread coordinates, which a move would invalidate.
// Systems running an adaptive controller attach observers, which
// demotes every group to the coordinator kernel (see shardSafe), so
// coordinator-window migration is exactly the supported configuration.
func (c *Ctx) Rebind(th machine.ThreadID) {
	if c.g.k != c.sys.K {
		panic(fmt.Sprintf("core: Rebind from shard-homed group %q; live migration is coordinator-only", c.g.name))
	}
	if int(th) < 0 || int(th) >= c.sys.M.Cfg.NumThreads() {
		panic(fmt.Sprintf("core: Rebind thread %d out of range", th))
	}
	if c.inUnit || c.inRound {
		panic("core: Rebind inside an S-unit or S-round")
	}
	if th == c.thread {
		return
	}
	c.flush()
	c.sys.M.Release(c.thread)
	c.sys.M.Bind(th)
	c.thread = th
	c.g.placement[c.idx] = th
	c.ep.Rebind(th)
}
