package core

import (
	"testing"

	"repro/internal/machine"
)

// TestAddGlobalOptionRemoveIdempotent pins the contract on the remove
// function AddGlobalOption returns: calling it more than once is a
// no-op after the first call, so a deferred cleanup racing an explicit
// teardown can never clear a slot that a later registration owns.
func TestAddGlobalOptionRemoveIdempotent(t *testing.T) {
	applied := map[string]int{}
	mark := func(name string) Option {
		return func(*System) { applied[name]++ }
	}

	removeA := AddGlobalOption(mark("a"))
	removeA()
	removeA() // second call must not disturb anything registered after A

	removeB := AddGlobalOption(mark("b"))
	defer removeB()
	removeA() // and neither must a third, after B took effect

	NewSystem(machine.SingleCore())
	if applied["a"] != 0 {
		t.Errorf("removed option applied %d times, want 0", applied["a"])
	}
	if applied["b"] != 1 {
		t.Errorf("surviving option applied %d times, want 1", applied["b"])
	}

	removeB()
	removeB()
	NewSystem(machine.SingleCore())
	if applied["b"] != 1 {
		t.Errorf("option b applied %d times after removal, want still 1", applied["b"])
	}
}
