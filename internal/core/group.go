package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Group is a set of STAMP processes spawned together with common
// attributes — the paper's "parallel or distributed STAMPs" whose
// aggregate complexity follows rule 5 of §3.1 (T = max, E = sum,
// P = E/T).
type Group struct {
	sys       *System
	name      string
	attrs     Attrs
	n         int
	ctxs      []*Ctx
	k         *sim.Kernel // where members spawn: a shard, or sys.K
	bar       *sim.Barrier
	placement Placement

	// profPub is the profiler total vector last published on the event
	// stream (at a barrier generation); the next EvProfile event carries
	// the delta since. Only touched by the simulation goroutine, and only
	// while a stream is attached.
	profPub obs.CatTimes
}

// GroupOption configures a group at spawn time.
type GroupOption func(*groupConfig)

type groupConfig struct {
	placement  Placement
	startOrder []int
	byShard    bool
}

// WithPlacement overrides the default distribution-attribute placement
// with an explicit thread assignment (len must equal the group size).
// The power-aware allocator in internal/sched produces such placements.
func WithPlacement(pl Placement) GroupOption {
	return func(gc *groupConfig) { gc.placement = pl }
}

// ShardByPlacement opts the group into shard-homed execution: on a
// sharded System, the group's processes spawn on the kernel shard
// owning their placement's chip, so the group advances concurrently
// with groups on other shards (under the conservative lookahead
// window; see sim.ShardGroup). The contract:
//
//   - every member must be placed on the same shard (same chip, or
//     chips mapped to one shard) — a spanning placement panics;
//   - the group communicates only by message passing; shared memory
//     and STM are coordinator-only and panic from a shard-homed
//     process;
//   - messages it exchanges with groups on other shards must cross a
//     chip boundary (the lookahead is the minimum cross-chip delay);
//   - a parent on another kernel cannot Await it.
//
// When the system is unsharded, or carries observers that require the
// single-kernel discipline (tracer, obs sinks, fault injection, race
// probe, checkpoint recorder), the option quietly demotes to the
// coordinator kernel: results are identical either way — sharding
// changes where work runs, never what it computes.
func ShardByPlacement() GroupOption {
	return func(gc *groupConfig) { gc.byShard = true }
}

// WithStartOrder overrides the order in which member processes are
// spawned (and therefore first activate) with a permutation of member
// ranks. Contexts, mailboxes and profiles are still created in rank
// order — only process start order changes. Checkpoint restore uses
// this to reproduce the contribution order recorded at the snapshot,
// so the resumed schedule's FIFO tie-breaking matches the original
// run's.
func WithStartOrder(order []int) GroupOption {
	return func(gc *groupConfig) { gc.startOrder = order }
}

// NewGroup spawns n STAMP processes running body with the given
// attributes. body receives each member's Ctx; member ranks are
// ctx.Index() ∈ [0, n). Processes start at the current virtual time.
func (sys *System) NewGroup(name string, attrs Attrs, n int, body func(ctx *Ctx)) *Group {
	return sys.NewGroupOpts(name, attrs, n, body)
}

// NewGroupOpts is NewGroup with options.
func (sys *System) NewGroupOpts(name string, attrs Attrs, n int, body func(ctx *Ctx), opts ...GroupOption) *Group {
	g, order := sys.newGroupShell(name, attrs, n, opts)
	for j := 0; j < n; j++ {
		i := j
		if order != nil {
			i = order[j]
		}
		ctx := g.ctxs[i]
		pname := fmt.Sprintf("%s/%d", name, i)
		ctx.p = g.k.Spawn(pname, func(p *sim.Proc) {
			ctx.start = p.Now()
			if s := ctx.restoreSnap; s != nil {
				ctx.restoreSnap = nil
				ctx.applyRestore(s)
			}
			if tr := sys.Obs.Tracer(); tr.Enabled() {
				ctx.procSpan = tr.Begin(ctx.start, pname, "proc", pname, 0)
			}
			defer func() {
				ctx.flush() // body may end with batched compute pending
				ctx.end = p.Now()
				sys.Obs.Tracer().End(ctx.procSpan, ctx.end)
				if p.Killed() {
					// A kill interrupts instrumented sections mid-flight:
					// charges may exceed the elapsed total, so seal leniently.
					ctx.prof.FinishInterrupted(ctx.end - ctx.start)
				} else {
					ctx.prof.Finish(ctx.end - ctx.start)
				}
				sys.M.Release(ctx.thread)
			}()
			body(ctx)
		})
		ctx.p.Ctx = ctx
	}
	sys.groups = append(sys.groups, g)
	return g
}

// newGroupShell validates options, builds the group and its member
// contexts, and returns the spawn order (nil = rank order). The spawn
// loop itself differs by execution mode — goroutine bodies in
// NewGroupOpts, step drivers in NewStepGroupOpts — and runs in the
// caller.
func (sys *System) newGroupShell(name string, attrs Attrs, n int, opts []GroupOption) (*Group, []int) {
	if n < 1 {
		panic("core: group needs at least one process")
	}
	var gc groupConfig
	for _, o := range opts {
		o(&gc)
	}
	pl := gc.placement
	if pl == nil {
		pl = sys.PlaceGroup(attrs.Dist, n)
	}
	if len(pl) != n {
		panic(fmt.Sprintf("core: placement size %d != group size %d", len(pl), n))
	}

	k := sys.K
	if gc.byShard && sys.shardSafe() {
		s := sys.M.ShardOfThread(pl[0])
		for _, t := range pl[1:] {
			if sys.M.ShardOfThread(t) != s {
				panic(fmt.Sprintf("core: ShardByPlacement group %q spans shards (placement %v)", name, pl))
			}
		}
		k = sys.M.KernelFor(pl[0])
	}

	g := &Group{
		sys:   sys,
		name:  name,
		attrs: attrs,
		n:     n,
		k:     k,
		bar:   sim.NewBarrier(k, n),
		// The group owns its placement: live migration (Ctx.Rebind)
		// updates it in place, which must never reach back into the
		// caller's slice (e.g. a sched.Decision reused for a second run).
		placement: append(Placement(nil), pl...),
	}
	order := gc.startOrder
	if order != nil {
		if len(order) != n {
			panic(fmt.Sprintf("core: start order size %d != group size %d", len(order), n))
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				panic(fmt.Sprintf("core: start order %v is not a permutation of [0,%d)", order, n))
			}
			seen[i] = true
		}
	}

	// Contexts, mailboxes, profiles and thread bindings are created in
	// rank order regardless of start order, so member coordinates
	// (endpoint indices, profile names) are identical however the group
	// is later restored. Only the spawn loop follows the start order:
	// spawn order fixes the kernel's event-sequence assignment and with
	// it the FIFO tie-breaking of same-instant activations.
	g.ctxs = make([]*Ctx, n)
	for i := 0; i < n; i++ {
		pname := fmt.Sprintf("%s/%d", name, i)
		ctx := &Ctx{sys: sys, g: g, idx: i, thread: pl[i]}
		ctx.ep = sys.Net.NewEndpoint(pname, pl[i])
		// The endpoint's wake kernel must be the one the member parks
		// on — g.k, which for demoted groups differs from the thread's
		// home shard.
		ctx.ep.BindKernel(g.k)
		ctx.prof = sys.Obs.Profiler().Proc(pname)
		sys.M.Bind(pl[i])
		g.ctxs[i] = ctx
	}
	return g, order
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Attrs returns the group's STAMP attributes.
func (g *Group) Attrs() Attrs { return g.attrs }

// Size returns the number of member processes.
func (g *Group) Size() int { return g.n }

// Ctxs returns the member contexts in rank order.
func (g *Group) Ctxs() []*Ctx { return g.ctxs }

// Placement returns the thread assignment of the group.
func (g *Group) Placement() Placement { return g.placement }

// Kernel returns the kernel the group's members run on — a shard for
// ShardByPlacement groups on a sharded system, sys.K otherwise.
func (g *Group) Kernel() *sim.Kernel { return g.k }

// Await blocks the calling STAMP process until every member of g has
// finished — how a parent waits for a nested STAMP (rule 4 of §3.1).
func (g *Group) Await(parent *Ctx) {
	parent.flush() // charge the parent's compute before it blocks
	for _, c := range g.ctxs {
		parent.p.Join(c.p)
	}
}

// ThreadsPerCoreUsed returns, per core index, how many group members
// are placed on that core — the quantity the power-envelope analysis
// constrains.
func (g *Group) ThreadsPerCoreUsed() map[int]int {
	out := make(map[int]int)
	for _, t := range g.placement {
		out[g.sys.M.Cfg.CoreOf(machine.ThreadID(t))]++
	}
	return out
}
