package core

import "fmt"

// Dist is the STAMP distribution attribute: where a group's processes
// are placed relative to processor boundaries.
type Dist int

const (
	// IntraProc packs processes onto hardware threads of as few
	// processors as possible (the paper's intra_proc keyword).
	IntraProc Dist = iota
	// InterProc spreads processes across processors (inter_proc).
	InterProc
)

// String returns the paper's keyword for the attribute.
func (d Dist) String() string {
	if d == IntraProc {
		return "intra_proc"
	}
	return "inter_proc"
}

// Exec is the STAMP execution attribute.
type Exec int

const (
	// AsyncExec lets each process proceed without restriction
	// (async_exec).
	AsyncExec Exec = iota
	// TransExec marks execution as transactional: code (or parts of
	// it) runs atomically with optimistic commit/abort (trans_exec).
	TransExec
)

// String returns the paper's keyword for the attribute.
func (e Exec) String() string {
	if e == TransExec {
		return "trans_exec"
	}
	return "async_exec"
}

// Comm is the STAMP communication attribute.
type Comm int

const (
	// AsyncComm lets communication proceed without blocking or
	// serialization; the algorithm supplies any needed synchronization
	// explicitly (async_comm).
	AsyncComm Comm = iota
	// SynchComm serializes shared-memory access and blocks message
	// passing; groups barrier at the end of every S-round (synch_comm).
	SynchComm
)

// String returns the paper's keyword for the attribute.
func (c Comm) String() string {
	if c == SynchComm {
		return "synch_comm"
	}
	return "async_comm"
}

// Attrs is the full attribute set of a STAMP process group: one value
// per axis of Table 1 plus the distribution attribute.
type Attrs struct {
	Dist Dist
	Exec Exec
	Comm Comm
}

// String renders like the paper's bracket notation, e.g.
// "[intra_proc, async_exec, synch_comm]".
func (a Attrs) String() string {
	return fmt.Sprintf("[%v, %v, %v]", a.Dist, a.Exec, a.Comm)
}

// Table1 returns the four (execution × communication) combinations of
// the paper's Table 1, with the given distribution attribute.
func Table1(d Dist) []Attrs {
	return []Attrs{
		{Dist: d, Exec: TransExec, Comm: SynchComm},
		{Dist: d, Exec: AsyncExec, Comm: SynchComm},
		{Dist: d, Exec: TransExec, Comm: AsyncComm},
		{Dist: d, Exec: AsyncExec, Comm: AsyncComm},
	}
}
