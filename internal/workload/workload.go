// Package workload provides deterministic, seeded generators for the
// inputs of the paper's three example families: linear systems for
// Jacobi, weighted digraphs for all-pairs shortest paths, account sets
// and transfer mixes for banking, and flight networks with itineraries
// for airline reservation. The paper specifies no concrete datasets, so
// these synthetic inputs are sized for laptop-scale reproduction
// (documented in DESIGN.md).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// LinearSystem is a dense n×n system A·x = b with a known solution.
type LinearSystem struct {
	N int
	A [][]float64
	B []float64
	// XStar is the exact solution used to manufacture B.
	XStar []float64
}

// NewLinearSystem generates a strictly diagonally dominant system (so
// Jacobi iteration converges) with entries in [-1, 1] and diagonal
// boosted above the row sum. Deterministic in (n, seed).
func NewLinearSystem(n int, seed int64) LinearSystem {
	if n < 1 {
		panic("workload: system size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	ls := LinearSystem{
		N:     n,
		A:     make([][]float64, n),
		B:     make([]float64, n),
		XStar: make([]float64, n),
	}
	for i := range ls.XStar {
		ls.XStar[i] = rng.Float64()*4 - 2
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		var offSum float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row[j] = rng.Float64()*2 - 1
			offSum += math.Abs(row[j])
		}
		// Strict dominance: |a_ii| > Σ|a_ij|.
		row[i] = offSum + 1 + rng.Float64()
		ls.A[i] = row
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += ls.A[i][j] * ls.XStar[j]
		}
		ls.B[i] = s
	}
	return ls
}

// Residual returns the max-norm error ‖x − x*‖∞ of a candidate solution.
func (ls LinearSystem) Residual(x []float64) float64 {
	var worst float64
	for i := range x {
		if d := math.Abs(x[i] - ls.XStar[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Inf is the "no edge" marker for graph weights, chosen so that
// Inf + maxWeight never overflows int64.
const Inf int64 = math.MaxInt64 / 4

// Graph is a dense weighted digraph given by its adjacency matrix:
// W[i][j] is the edge weight, Inf if absent, 0 on the diagonal.
type Graph struct {
	V int
	W [][]int64
}

// NewRandomGraph generates a digraph with the given edge density in
// (0,1] and integer weights in [1, maxW]. A Hamiltonian-style cycle of
// edges is always included so the graph is strongly connected and every
// distance is finite. Deterministic in (v, density, maxW, seed).
func NewRandomGraph(v int, density float64, maxW int64, seed int64) Graph {
	if v < 2 {
		panic("workload: graph needs at least 2 vertices")
	}
	if density <= 0 || density > 1 {
		panic("workload: density must be in (0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	g := Graph{V: v, W: make([][]int64, v)}
	for i := range g.W {
		g.W[i] = make([]int64, v)
		for j := range g.W[i] {
			switch {
			case i == j:
				g.W[i][j] = 0
			case rng.Float64() < density:
				g.W[i][j] = 1 + rng.Int63n(maxW)
			default:
				g.W[i][j] = Inf
			}
		}
	}
	// Guarantee strong connectivity via the cycle 0→1→…→v-1→0.
	for i := 0; i < v; i++ {
		j := (i + 1) % v
		if g.W[i][j] == Inf {
			g.W[i][j] = 1 + rng.Int63n(maxW)
		}
	}
	return g
}

// Clone returns a deep copy of the adjacency matrix.
func (g Graph) Clone() [][]int64 {
	out := make([][]int64, g.V)
	for i, row := range g.W {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

// Transfer is one banking transfer request.
type Transfer struct {
	From, To int
	Amount   int64
}

// Bank is a banking workload: account count, initial balance and a
// transfer mix.
type Bank struct {
	Accounts    int
	InitBalance int64
	Transfers   []Transfer
}

// NewBank generates a transfer mix over nAcc accounts. hotFrac in
// [0,1) is the fraction of transfers that touch account 0 (the
// hot spot), controlling contention. Deterministic in all arguments.
func NewBank(nAcc int, nTransfers int, initBalance int64, hotFrac float64, seed int64) Bank {
	if nAcc < 2 {
		panic("workload: bank needs at least 2 accounts")
	}
	rng := rand.New(rand.NewSource(seed))
	b := Bank{Accounts: nAcc, InitBalance: initBalance}
	for i := 0; i < nTransfers; i++ {
		var from, to int
		if rng.Float64() < hotFrac {
			from = 0
			to = 1 + rng.Intn(nAcc-1)
		} else {
			from = rng.Intn(nAcc)
			to = rng.Intn(nAcc - 1)
			if to >= from {
				to++
			}
		}
		amt := 1 + rng.Int63n(initBalance/4+1)
		b.Transfers = append(b.Transfers, Transfer{From: from, To: to, Amount: amt})
	}
	return b
}

// TotalMoney returns the conserved quantity Σ balances at start.
func (b Bank) TotalMoney() int64 { return int64(b.Accounts) * b.InitBalance }

// Itinerary is a three-leg trip through two intermediate sectors, as in
// the paper's reserve(from, to, sect1, sect2) example.
type Itinerary struct {
	From, Sect1, Sect2, To int
}

// Legs returns the three legs as (src, dst) sector pairs.
func (it Itinerary) Legs() [3][2]int {
	return [3][2]int{{it.From, it.Sect1}, {it.Sect1, it.Sect2}, {it.Sect2, it.To}}
}

// Airline is a reservation workload: a sector graph where every ordered
// sector pair is a bookable leg with fixed seat capacity, plus a batch
// of three-leg itineraries.
type Airline struct {
	Sectors     int
	SeatsPerLeg int64
	Itineraries []Itinerary
}

// LegIndex maps an ordered sector pair to a dense leg id.
func (a Airline) LegIndex(src, dst int) int { return src*a.Sectors + dst }

// NumLegs returns the dense leg table size.
func (a Airline) NumLegs() int { return a.Sectors * a.Sectors }

// NewAirline generates itineraries over the sector set; the four stops
// of each itinerary are distinct. Deterministic in all arguments.
func NewAirline(sectors int, seatsPerLeg int64, nItineraries int, seed int64) Airline {
	if sectors < 4 {
		panic("workload: airline needs at least 4 sectors")
	}
	rng := rand.New(rand.NewSource(seed))
	a := Airline{Sectors: sectors, SeatsPerLeg: seatsPerLeg}
	for i := 0; i < nItineraries; i++ {
		perm := rng.Perm(sectors)
		a.Itineraries = append(a.Itineraries, Itinerary{
			From: perm[0], Sect1: perm[1], Sect2: perm[2], To: perm[3],
		})
	}
	return a
}

// Describe renders a short workload summary for harness output.
func (a Airline) Describe() string {
	return fmt.Sprintf("airline: %d sectors, %d seats/leg, %d itineraries",
		a.Sectors, a.SeatsPerLeg, len(a.Itineraries))
}
