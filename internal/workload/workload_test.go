package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearSystemDeterministic(t *testing.T) {
	a := NewLinearSystem(16, 42)
	b := NewLinearSystem(16, 42)
	for i := 0; i < 16; i++ {
		if a.B[i] != b.B[i] || a.XStar[i] != b.XStar[i] {
			t.Fatal("same seed produced different systems")
		}
		for j := 0; j < 16; j++ {
			if a.A[i][j] != b.A[i][j] {
				t.Fatal("same seed produced different matrices")
			}
		}
	}
	c := NewLinearSystem(16, 43)
	if c.B[0] == a.B[0] {
		t.Fatal("different seeds produced identical systems")
	}
}

func TestLinearSystemDiagonallyDominant(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 2 + int(n8)%30
		ls := NewLinearSystem(n, seed)
		for i := 0; i < n; i++ {
			var off float64
			for j := 0; j < n; j++ {
				if j != i {
					off += math.Abs(ls.A[i][j])
				}
			}
			if math.Abs(ls.A[i][i]) <= off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearSystemBMatchesSolution(t *testing.T) {
	ls := NewLinearSystem(8, 7)
	for i := 0; i < 8; i++ {
		var s float64
		for j := 0; j < 8; j++ {
			s += ls.A[i][j] * ls.XStar[j]
		}
		if math.Abs(s-ls.B[i]) > 1e-9 {
			t.Fatalf("row %d: A·x* = %g, b = %g", i, s, ls.B[i])
		}
	}
	if ls.Residual(ls.XStar) != 0 {
		t.Fatal("residual of exact solution not 0")
	}
	off := append([]float64(nil), ls.XStar...)
	off[3] += 0.5
	if r := ls.Residual(off); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("residual of perturbed solution %g, want 0.5", r)
	}
}

func TestRandomGraphProperties(t *testing.T) {
	g := NewRandomGraph(20, 0.2, 10, 5)
	if g.V != 20 {
		t.Fatalf("V = %d", g.V)
	}
	for i := 0; i < g.V; i++ {
		if g.W[i][i] != 0 {
			t.Fatalf("diagonal W[%d][%d] = %d", i, i, g.W[i][i])
		}
		// The connectivity cycle guarantees the next-hop edge.
		j := (i + 1) % g.V
		if g.W[i][j] >= Inf {
			t.Fatalf("cycle edge %d→%d missing", i, j)
		}
		for j := 0; j < g.V; j++ {
			w := g.W[i][j]
			if w != 0 && w != Inf && (w < 1 || w > 10) {
				t.Fatalf("weight W[%d][%d] = %d out of range", i, j, w)
			}
		}
	}
}

func TestGraphCloneIsDeep(t *testing.T) {
	g := NewRandomGraph(4, 1, 5, 1)
	c := g.Clone()
	c[1][2] = 999
	if g.W[1][2] == 999 {
		t.Fatal("clone shares storage")
	}
}

func TestInfDoesNotOverflowWhenAdded(t *testing.T) {
	if Inf+Inf < Inf {
		t.Fatal("Inf + Inf overflows int64")
	}
}

func TestBankWorkload(t *testing.T) {
	b := NewBank(32, 100, 500, 0.5, 9)
	if len(b.Transfers) != 100 {
		t.Fatalf("transfers = %d", len(b.Transfers))
	}
	if b.TotalMoney() != 32*500 {
		t.Fatalf("total money %d", b.TotalMoney())
	}
	hot := 0
	for _, tr := range b.Transfers {
		if tr.From == tr.To {
			t.Fatalf("self transfer %+v", tr)
		}
		if tr.From < 0 || tr.From >= 32 || tr.To < 0 || tr.To >= 32 {
			t.Fatalf("account out of range: %+v", tr)
		}
		if tr.Amount < 1 {
			t.Fatalf("non-positive amount: %+v", tr)
		}
		if tr.From == 0 {
			hot++
		}
	}
	// hotFrac 0.5 over 100 transfers: hot-spot senders well above the
	// uniform expectation of ~3.
	if hot < 30 {
		t.Fatalf("hot-spot transfers = %d, want ≥ 30", hot)
	}
}

func TestBankZeroHotFraction(t *testing.T) {
	b := NewBank(64, 200, 100, 0, 11)
	from0 := 0
	for _, tr := range b.Transfers {
		if tr.From == 0 {
			from0++
		}
	}
	if from0 > 20 { // uniform expectation ≈ 3
		t.Fatalf("uniform workload skewed: %d transfers from account 0", from0)
	}
}

func TestAirlineItinerariesDistinctStops(t *testing.T) {
	a := NewAirline(8, 5, 50, 3)
	if len(a.Itineraries) != 50 {
		t.Fatalf("itineraries = %d", len(a.Itineraries))
	}
	for _, it := range a.Itineraries {
		stops := map[int]bool{it.From: true, it.Sect1: true, it.Sect2: true, it.To: true}
		if len(stops) != 4 {
			t.Fatalf("itinerary stops not distinct: %+v", it)
		}
		for _, leg := range it.Legs() {
			if leg[0] == leg[1] {
				t.Fatalf("degenerate leg in %+v", it)
			}
		}
	}
}

func TestAirlineLegIndexBijective(t *testing.T) {
	a := Airline{Sectors: 6}
	seen := map[int]bool{}
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			idx := a.LegIndex(s, d)
			if idx < 0 || idx >= a.NumLegs() {
				t.Fatalf("leg index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("duplicate leg index %d", idx)
			}
			seen[idx] = true
		}
	}
}

func TestAirlineDescribe(t *testing.T) {
	a := NewAirline(5, 3, 7, 1)
	if a.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	cases := []func(){
		func() { NewLinearSystem(0, 1) },
		func() { NewRandomGraph(1, 0.5, 5, 1) },
		func() { NewRandomGraph(5, 0, 5, 1) },
		func() { NewRandomGraph(5, 1.5, 5, 1) },
		func() { NewBank(1, 5, 10, 0, 1) },
		func() { NewAirline(3, 5, 5, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
