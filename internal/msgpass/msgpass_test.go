package msgpass

import (
	"testing"

	"repro/internal/agenttest"
	"repro/internal/machine"
	"repro/internal/sim"
)

func rig(cfg machine.Config) (*sim.Kernel, *Network) {
	k := sim.NewKernel()
	return k, New(machine.New(k, cfg))
}

func TestSendRecvDeliversPayload(t *testing.T) {
	k, net := rig(machine.Niagara())
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 1)
	k.Spawn("sender", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		src.Send(a, dst, "hello")
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		a := agenttest.New(p, 1)
		m := dst.Recv(a)
		if m.Payload != "hello" {
			t.Errorf("payload %v", m.Payload)
		}
		if m.From != src {
			t.Error("wrong provenance")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Delivered() != 1 {
		t.Fatalf("delivered %d, want 1", net.Delivered())
	}
}

func TestIntraDelayLA(t *testing.T) {
	cfg := machine.Niagara() // LA=5
	k, net := rig(cfg)
	a0 := net.NewEndpoint("a", 0)
	a1 := net.NewEndpoint("b", 1) // same core (threads 0-3 on core 0)
	var arrived sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		a0.Send(ag, a1, 1)
	})
	k.Spawn("r", func(p *sim.Proc) {
		ag := agenttest.New(p, 1)
		m := a1.Recv(ag)
		arrived = m.Arrived
		if ag.C.RecvsIntra != 1 || ag.C.RecvsInter != 0 {
			t.Errorf("recv counters intra=%d inter=%d", ag.C.RecvsIntra, ag.C.RecvsInter)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != cfg.Costs.LA {
		t.Fatalf("intra message arrived at %d, want %d", arrived, cfg.Costs.LA)
	}
}

func TestInterDelayLE(t *testing.T) {
	cfg := machine.Niagara() // LE=20
	k, net := rig(cfg)
	a0 := net.NewEndpoint("a", 0)
	b0 := net.NewEndpoint("b", 4) // thread 4 = core 1
	var arrived sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		a0.Send(ag, b0, 1)
		if ag.C.SendsInter != 1 || ag.C.SendsIntra != 0 {
			t.Errorf("send counters intra=%d inter=%d", ag.C.SendsIntra, ag.C.SendsInter)
		}
	})
	k.Spawn("r", func(p *sim.Proc) {
		ag := agenttest.New(p, 4)
		arrived = b0.Recv(ag).Arrived
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived != cfg.Costs.LE {
		t.Fatalf("inter message arrived at %d, want %d", arrived, cfg.Costs.LE)
	}
}

func TestSendIsNonBlocking(t *testing.T) {
	k, net := rig(machine.Niagara())
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 4)
	var after sim.Time = -1
	k.Spawn("s", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		src.Send(ag, dst, 1)
		after = p.Now()
	})
	k.Spawn("r", func(p *sim.Proc) {
		dst.Recv(agenttest.New(p, 4))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Sender only pays bandwidth g_mp_e = 2 ticks, not the 20-tick L_e.
	if after >= machine.Niagara().Costs.LE {
		t.Fatalf("async send blocked %d ticks", after)
	}
}

func TestSendSyncBlocksUntilDelivery(t *testing.T) {
	cfg := machine.Niagara()
	k, net := rig(cfg)
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 4)
	var after sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		src.SendSync(ag, dst, 1)
		after = p.Now()
	})
	k.Spawn("r", func(p *sim.Proc) {
		dst.Recv(agenttest.New(p, 4))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if after < cfg.Costs.LE {
		t.Fatalf("sync send returned at %d, before delivery at %d", after, cfg.Costs.LE)
	}
}

func TestRecvBlocksUntilArrival(t *testing.T) {
	cfg := machine.Niagara()
	k, net := rig(cfg)
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 4)
	var recvAt sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		ag := agenttest.New(p, 4)
		dst.Recv(ag)
		recvAt = p.Now()
		if ag.C.QueueWait == 0 {
			t.Error("blocked receive did not record queue wait")
		}
	})
	k.Spawn("s", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		p.Hold(10)
		src.Send(ag, dst, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt < 10+cfg.Costs.LE {
		t.Fatalf("received at %d, before arrival %d", recvAt, 10+cfg.Costs.LE)
	}
}

func TestFIFOPerSenderReceiverPair(t *testing.T) {
	k, net := rig(machine.Niagara())
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 1)
	k.Spawn("s", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		for i := 0; i < 5; i++ {
			src.Send(ag, dst, i)
		}
	})
	k.Spawn("r", func(p *sim.Proc) {
		ag := agenttest.New(p, 1)
		for i := 0; i < 5; i++ {
			m := dst.Recv(ag)
			if m.Payload != i {
				t.Errorf("message %d out of order: got %v", i, m.Payload)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	k, net := rig(machine.Niagara())
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 1)
	k.Spawn("r", func(p *sim.Proc) {
		ag := agenttest.New(p, 1)
		if _, ok := dst.TryRecv(ag); ok {
			t.Error("TryRecv succeeded on empty inbox")
		}
		p.Hold(100) // let the message arrive
		m, ok := dst.TryRecv(ag)
		if !ok || m.Payload != "x" {
			t.Errorf("TryRecv after arrival: ok=%v payload=%v", ok, m.Payload)
		}
	})
	k.Spawn("s", func(p *sim.Proc) {
		src.Send(agenttest.New(p, 0), dst, "x")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvN(t *testing.T) {
	k, net := rig(machine.Niagara())
	dst := net.NewEndpoint("dst", 0)
	for i := 0; i < 3; i++ {
		i := i
		ep := net.NewEndpoint("s", machine.ThreadID(4+4*i))
		k.Spawn("s", func(p *sim.Proc) {
			ag := agenttest.New(p, ep.Thread())
			p.Hold(sim.Time(i))
			ep.Send(ag, dst, i)
		})
	}
	k.Spawn("r", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		ms := dst.RecvN(ag, 3)
		if len(ms) != 3 {
			t.Errorf("got %d messages", len(ms))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSkipsSelf(t *testing.T) {
	k, net := rig(machine.Niagara())
	eps := make([]*Endpoint, 4)
	for i := range eps {
		eps[i] = net.NewEndpoint("e", machine.ThreadID(i))
	}
	k.Spawn("b", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		eps[0].Broadcast(ag, eps, "v")
		if ag.C.Sends() != 3 {
			t.Errorf("broadcast sent %d, want 3", ag.C.Sends())
		}
	})
	for i := 1; i < 4; i++ {
		ep := eps[i]
		k.Spawn("r", func(p *sim.Proc) {
			ep.Recv(agenttest.New(p, ep.Thread()))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if eps[0].Pending() != 0 {
		t.Fatal("broadcaster received its own message")
	}
}

func TestBadEndpointThreadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, net := rig(machine.Niagara())
	net.NewEndpoint("bad", 64)
}

func TestSizedMessagesChargeBandwidth(t *testing.T) {
	cfg := machine.Niagara()
	cfg.Costs.GMpWord = 0.5
	k, net := rig(cfg)
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 1)
	var shortArrive, longArrive sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		shortArrive = src.SendSized(a, dst, "s", 1)
		start := p.Now()
		longArrive = src.SendSized(a, dst, "l", 101)
		// Long injection occupies the sender: g=1 + 100·0.5 = 51.
		if injected := p.Now() - start; injected < 51 {
			t.Errorf("long send occupied only %d ticks", injected)
		}
	})
	k.Spawn("r", func(p *sim.Proc) {
		a := agenttest.New(p, 1)
		dst.Recv(a)
		dst.Recv(a)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Wire time: short L_a = 5; long L_a + 100·0.5 = 55.
	if shortArrive != 5 {
		t.Fatalf("short arrival %d, want 5", shortArrive)
	}
	if longArrive-sim.Time(51) < 55-51 { // arrival measured from its own send instant
		t.Fatalf("long arrival %d too early", longArrive)
	}
}

func TestBatchingBeatsManySmallMessages(t *testing.T) {
	// 64 words as one long message vs 64 unit messages: with per-word
	// gap well under the fixed per-message charge, batching wins —
	// the LogGP motivation.
	run := func(batch bool) sim.Time {
		cfg := machine.Niagara()
		cfg.Costs.GMpWord = 0.25
		k, net := rig(cfg)
		src := net.NewEndpoint("src", 0)
		dst := net.NewEndpoint("dst", 1)
		k.Spawn("s", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			if batch {
				src.SendSized(a, dst, "batch", 64)
			} else {
				for i := 0; i < 64; i++ {
					src.SendSized(a, dst, i, 1)
				}
			}
		})
		k.Spawn("r", func(p *sim.Proc) {
			a := agenttest.New(p, 1)
			n := 64
			if batch {
				n = 1
			}
			for i := 0; i < n; i++ {
				dst.Recv(a)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	batched, single := run(true), run(false)
	if batched >= single {
		t.Fatalf("batching (T=%d) not faster than %d unit messages (T=%d)", batched, 64, single)
	}
}

func TestZeroWordSizeTreatedAsOne(t *testing.T) {
	cfg := machine.Niagara()
	cfg.Costs.GMpWord = 1
	k, net := rig(cfg)
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 1)
	k.Spawn("s", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if arr := src.SendSized(a, dst, "x", 0); arr != cfg.Costs.LA {
			t.Errorf("zero-size arrival %d, want %d", arr, cfg.Costs.LA)
		}
	})
	k.Spawn("r", func(p *sim.Proc) {
		dst.Recv(agenttest.New(p, 1))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
