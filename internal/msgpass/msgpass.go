// Package msgpass implements the STAMP message-passing substrate:
// mailbox endpoints with the paper's intra-/inter-processor message
// delays (L_a, L_e) and bandwidth factors (g_mp_a, g_mp_e). Delivery is
// FIFO per sender-receiver pair and messages become receivable exactly
// at their arrival time in virtual time.
package msgpass

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Agent is the sending/receiving process as the network sees it (the
// STAMP core's execution context implements it).
type Agent interface {
	Proc() *sim.Proc
	Thread() machine.ThreadID
	Counters() *energy.Counters
	HoldCost(ticks float64)
	// Profile returns the process's virtual-time profile sink, or nil
	// when profiling is disabled (the nil profile is a no-op).
	Profile() *obs.ProcProfile
}

// Message is a delivered payload plus provenance.
type Message struct {
	From    *Endpoint
	Payload any
	// Words is the message size for long-message (LogGP-style)
	// bandwidth charging; 0 or 1 means a minimal message.
	Words   int
	SentAt  sim.Time
	Arrived sim.Time
}

// Network is the message-passing subsystem of one simulated machine.
type Network struct {
	m *machine.Machine

	delivered int64
	wireTicks sim.Time // summed in-flight latency of all messages
	occupancy float64  // summed sender/receiver bandwidth charges
	maxInbox  int      // deepest inbox observed at any delivery
	endpoints []*Endpoint
}

// New creates the network for machine m.
func New(m *machine.Machine) *Network {
	return &Network{m: m}
}

// Machine returns the backing machine.
func (n *Network) Machine() *machine.Machine { return n.m }

// Delivered returns the total number of messages delivered so far.
func (n *Network) Delivered() int64 { return n.delivered }

// WireTicks returns the summed in-flight latency (L plus long-message
// serialization) of every message sent so far.
func (n *Network) WireTicks() sim.Time { return n.wireTicks }

// OccupancyTicks returns the summed bandwidth (g) occupancy charged to
// senders and receivers, in fractional ticks.
func (n *Network) OccupancyTicks() float64 { return n.occupancy }

// MaxInboxDepth returns the deepest mailbox backlog observed at any
// delivery instant — a router/endpoint congestion indicator.
func (n *Network) MaxInboxDepth() int { return n.maxInbox }

// Endpoint is one process's mailbox. Create one per process with the
// hardware thread the process is bound to.
type Endpoint struct {
	net    *Network
	name   string
	thread machine.ThreadID
	inbox  []Message
	rq     sim.WaitQueue // blocked receivers
}

// NewEndpoint registers a mailbox owned by a process on hardware
// thread t.
func (n *Network) NewEndpoint(name string, t machine.ThreadID) *Endpoint {
	if int(t) < 0 || int(t) >= n.m.Cfg.NumThreads() {
		panic(fmt.Sprintf("msgpass: endpoint thread %d out of range", t))
	}
	ep := &Endpoint{net: n, name: name, thread: t}
	n.endpoints = append(n.endpoints, ep)
	return ep
}

// Name returns the endpoint name.
func (e *Endpoint) Name() string { return e.name }

// Thread returns the owning hardware thread.
func (e *Endpoint) Thread() machine.ThreadID { return e.thread }

// Pending returns the number of messages already arrived and not yet
// received.
func (e *Endpoint) Pending() int { return len(e.inbox) }

// delay and bandwidth class for a transfer from thread a to thread b.
func (n *Network) linkCosts(a, b machine.ThreadID) (delay sim.Time, g float64, intra bool) {
	c := n.m.Cfg.Costs
	if n.m.Cfg.SameCore(a, b) {
		return c.LA, c.GMpA, true
	}
	return c.LE, c.GMpE, false
}

// Send transmits payload from agent a to endpoint dst without blocking
// for delivery: the sender is charged the bandwidth (occupancy) cost and
// continues; the message arrives L ticks later. It returns the arrival
// time.
func (e *Endpoint) Send(a Agent, dst *Endpoint, payload any) sim.Time {
	return e.SendSized(a, dst, payload, 1)
}

// SendSized is Send for a long message of `words` payload words. Per
// the LogGP extension, injection occupies the sender for an extra
// (words−1)·G_word and the wire for the same, so the arrival time is
// L + (words−1)·G_word after the send instant.
func (e *Endpoint) SendSized(a Agent, dst *Endpoint, payload any, words int) sim.Time {
	if dst == nil {
		panic("msgpass: send to nil endpoint")
	}
	if words < 1 {
		words = 1
	}
	delay, g, intra := e.net.linkCosts(a.Thread(), dst.thread)
	if intra {
		a.Counters().SendsIntra++
	} else {
		a.Counters().SendsInter++
	}
	extra := float64(words-1) * e.net.m.Cfg.Costs.GMpWord
	// The message departs at the send instant; the bandwidth charge g
	// (plus the long-message serialization) is sender occupancy, paid
	// after injection (the model adds the L and g terms independently
	// in T_S-round).
	p := a.Proc()
	m := Message{From: e, Payload: payload, Words: words, SentAt: p.Now()}
	wire := delay + sim.Time(extra)
	arrive := m.SentAt + wire
	e.net.deliverAt(e.net.m.K, dst, m, wire)
	e.net.wireTicks += wire
	e.net.occupancy += g + extra
	a.HoldCost(g + extra)
	a.Profile().Charge(obs.CatMsgWait, p.Now()-m.SentAt)
	return arrive
}

// SendSync transmits like Send but blocks the sender until the message
// has arrived at dst — the paper's synch_comm behaviour for message
// passing ("blocked processes in message passing").
func (e *Endpoint) SendSync(a Agent, dst *Endpoint, payload any) {
	arrive := e.Send(a, dst, payload)
	p := a.Proc()
	if wait := arrive - p.Now(); wait > 0 {
		p.Hold(wait)
		a.Profile().Charge(obs.CatMsgWait, wait)
	}
}

// deliverAt schedules the arrival of m at dst after delay.
func (n *Network) deliverAt(k *sim.Kernel, dst *Endpoint, m Message, delay sim.Time) {
	k.Schedule(delay, func() {
		m.Arrived = k.Now()
		dst.inbox = append(dst.inbox, m)
		if len(dst.inbox) > n.maxInbox {
			n.maxInbox = len(dst.inbox)
		}
		n.delivered++
		dst.rq.Signal(k)
	})
}

// Recv blocks agent a until a message is available in its endpoint e,
// then removes and returns the oldest one, charging receive cost.
func (e *Endpoint) Recv(a Agent) Message {
	p := a.Proc()
	t0 := p.Now()
	for len(e.inbox) == 0 {
		before := p.Now()
		e.rq.Wait(p)
		a.Counters().QueueWait += p.Now() - before
	}
	m := e.inbox[0]
	copy(e.inbox, e.inbox[1:])
	e.inbox[len(e.inbox)-1] = Message{}
	e.inbox = e.inbox[:len(e.inbox)-1]

	_, g, intra := e.net.linkCosts(m.From.thread, e.thread)
	if intra {
		a.Counters().RecvsIntra++
	} else {
		a.Counters().RecvsInter++
	}
	extra := 0.0
	if m.Words > 1 {
		extra = float64(m.Words-1) * e.net.m.Cfg.Costs.GMpWord
	}
	e.net.occupancy += g + extra
	a.HoldCost(g + extra)
	a.Profile().Charge(obs.CatMsgWait, p.Now()-t0)
	return m
}

// TryRecv returns the oldest arrived message without blocking; ok is
// false if none has arrived.
func (e *Endpoint) TryRecv(a Agent) (Message, bool) {
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	return e.Recv(a), true
}

// RecvN receives exactly n messages, blocking as needed.
func (e *Endpoint) RecvN(a Agent, n int) []Message {
	out := make([]Message, 0, n)
	for len(out) < n {
		out = append(out, e.Recv(a))
	}
	return out
}

// Broadcast sends payload from agent a (owner of e) to every endpoint
// in dsts, skipping e itself.
func (e *Endpoint) Broadcast(a Agent, dsts []*Endpoint, payload any) {
	for _, d := range dsts {
		if d == e {
			continue
		}
		e.Send(a, d, payload)
	}
}
