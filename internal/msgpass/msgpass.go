// Package msgpass implements the STAMP message-passing substrate:
// mailbox endpoints with the paper's intra-/inter-processor message
// delays (L_a, L_e) and bandwidth factors (g_mp_a, g_mp_e). Delivery is
// FIFO per sender-receiver pair and messages become receivable exactly
// at their arrival time in virtual time.
package msgpass

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Agent is the sending/receiving process as the network sees it (the
// STAMP core's execution context implements it).
type Agent interface {
	Proc() *sim.Proc
	Thread() machine.ThreadID
	Counters() *energy.Counters
	// ChargeCost charges virtual time with deterministic per-category
	// fractional carry, attributing materialized ticks to cat.
	ChargeCost(cat obs.Category, ticks float64)
	// Profile returns the process's virtual-time profile sink, or nil
	// when profiling is disabled (the nil profile is a no-op).
	Profile() *obs.ProcProfile
}

// FaultAction is a fault injector's decision about one message
// transfer.
type FaultAction uint8

const (
	// FaultNone delivers the message normally.
	FaultNone FaultAction = iota
	// FaultDrop loses the message in flight: the sender is charged
	// injection occupancy as usual, but nothing ever arrives.
	FaultDrop
	// FaultDup delivers the message twice (two identical copies, same
	// arrival time; FIFO order puts them adjacent in the inbox).
	FaultDup
	// FaultDelay delivers the message after extra in-flight latency.
	FaultDelay
)

// FaultInjector intercepts every message transfer on a Network.
// Implementations must be deterministic functions of virtual-time
// state — internal/fault provides a seeded one — and are consulted
// inside the simulation's single-goroutine discipline, so they need no
// locking.
type FaultInjector interface {
	// OnSend classifies the transfer of m from src to dst, returning
	// the action and, for FaultDelay, the extra latency in ticks.
	OnSend(src, dst *Endpoint, m *Message) (FaultAction, sim.Time)
}

// SetFaultInjector installs inj on the network; nil disables
// injection. With no injector the send path is exactly the fault-free
// one.
func (n *Network) SetFaultInjector(inj FaultInjector) { n.faults = inj }

// Message is a delivered payload plus provenance.
type Message struct {
	From    *Endpoint
	Payload any
	// Words is the message size for long-message (LogGP-style)
	// bandwidth charging; 0 or 1 means a minimal message.
	Words   int
	SentAt  sim.Time
	Arrived sim.Time

	// hb is the probe's happens-before token, stamped at send and
	// redeemed at receive (0 = no probe was attached at send time). It
	// rides inside the message so the edge survives delivery delays,
	// duplication and reordering across endpoints.
	hb uint64
}

// Probe observes message transfers for happens-before tracking. The
// race detector (internal/racedet) is the one implementation; it must
// be passive (no holds, no blocking).
type Probe interface {
	// MsgSend fires when p sends a message from src to dst, before
	// delivery is scheduled. The returned token (must be nonzero) is
	// carried by the message and passed to MsgRecv on receipt; a
	// dropped message's token is simply never redeemed, a duplicated
	// message's token is redeemed twice.
	MsgSend(src, dst *Endpoint, p *sim.Proc) uint64
	// MsgRecv fires when p receives a message carrying token at dst.
	MsgRecv(dst *Endpoint, p *sim.Proc, token uint64)
}

// SetProbe attaches a transfer probe to the network (nil detaches).
// Attach before the simulation runs.
func (n *Network) SetProbe(pr Probe) { n.probe = pr }

// DeliveryRecorder observes scheduled deliveries for checkpointing: a
// message is "in flight" from the instant delivery is scheduled until
// the delivery event fires. The checkpoint layer (internal/ckpt) is the
// one implementation; it must be passive. Depart returns a nonzero
// token; Land redeems it when the message arrives.
type DeliveryRecorder interface {
	Depart(dst *Endpoint, m *Message, arrive sim.Time) uint64
	Land(token uint64)
}

// SetDeliveryRecorder installs rec on the network; nil disables
// recording. With no recorder the delivery path is byte-identical to
// the unrecorded one.
func (n *Network) SetDeliveryRecorder(rec DeliveryRecorder) { n.recorder = rec }

// ObserverFree reports that no fault injector, probe or delivery
// recorder is installed — the precondition for routing traffic across
// kernel shards (observers are consulted synchronously in sender
// context and would race between concurrently-dispatching shards).
func (n *Network) ObserverFree() bool {
	return n.faults == nil && n.probe == nil && n.recorder == nil
}

// Network is the message-passing subsystem of one simulated machine.
// On a sharded machine (machine.NewSharded) all mutable counter state
// lives in per-shard partials so that shards running concurrently
// within a lookahead window never touch shared memory; the public
// accessors fold the partials. The folds are exact for the stock cost
// tables because every g value is integral (float64 addition over
// integers is associative below 2^53); fractional g values would make
// the folded occupancy differ from a sequential run's by rounding
// order, not by model semantics.
type Network struct {
	m *machine.Machine

	endpoints []*Endpoint

	faults   FaultInjector
	probe    Probe
	recorder DeliveryRecorder

	// shards holds the counter partials: one entry for an unsharded
	// machine, one per shard otherwise. shardIdx maps each shard kernel
	// to its index (nil when unsharded).
	shards   []netShard
	shardIdx map[*sim.Kernel]int
}

// netShard is the per-shard slice of the network's mutable state. Each
// field is only ever touched from its own shard's kernel context (or
// from coordinator context between windows), so no locking is needed.
// Send-side charges (wire, injection occupancy, fault counters) belong
// to the sending process's shard; delivery-side state (delivered,
// maxInbox, the delivery-record pool) and drain occupancy belong to
// the receiving endpoint's shard.
type netShard struct {
	delivered int64
	wireTicks sim.Time // summed in-flight latency of all messages
	occupancy float64  // summed sender/receiver bandwidth charges
	maxInbox  int      // deepest inbox observed at any delivery

	dropped    int64
	duplicated int64
	delayed    int64
	faultDelay sim.Time // summed extra latency of delayed messages

	// freeDeliveries recycles in-flight delivery records (see
	// deliverLocal): at steady state an intra-shard send schedules its
	// arrival without allocating a closure or a boxed Message.
	freeDeliveries []*delivery
}

// New creates the network for machine m.
func New(m *machine.Machine) *Network {
	n := &Network{m: m}
	if sg := m.Shards(); sg != nil {
		n.shards = make([]netShard, sg.NumShards())
		n.shardIdx = make(map[*sim.Kernel]int, sg.NumShards())
		for i := 0; i < sg.NumShards(); i++ {
			n.shardIdx[sg.Shard(i)] = i
		}
	} else {
		n.shards = make([]netShard, 1)
	}
	return n
}

// shardFor returns the counter partial owned by kernel k's shard.
func (n *Network) shardFor(k *sim.Kernel) *netShard {
	if len(n.shards) == 1 {
		return &n.shards[0]
	}
	return &n.shards[n.shardIdx[k]]
}

// Machine returns the backing machine.
func (n *Network) Machine() *machine.Machine { return n.m }

// Delivered returns the total number of messages delivered so far.
func (n *Network) Delivered() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].delivered
	}
	return t
}

// WireTicks returns the summed in-flight latency (L plus long-message
// serialization) of every message sent so far.
func (n *Network) WireTicks() sim.Time {
	var t sim.Time
	for i := range n.shards {
		t += n.shards[i].wireTicks
	}
	return t
}

// OccupancyTicks returns the summed bandwidth (g) occupancy charged to
// senders and receivers, in fractional ticks.
func (n *Network) OccupancyTicks() float64 {
	var t float64
	for i := range n.shards {
		t += n.shards[i].occupancy
	}
	return t
}

// MaxInboxDepth returns the deepest mailbox backlog observed at any
// delivery instant — a router/endpoint congestion indicator.
func (n *Network) MaxInboxDepth() int {
	t := 0
	for i := range n.shards {
		if n.shards[i].maxInbox > t {
			t = n.shards[i].maxInbox
		}
	}
	return t
}

// Dropped returns the number of messages lost by fault injection.
func (n *Network) Dropped() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].dropped
	}
	return t
}

// Duplicated returns the number of messages duplicated by fault
// injection (each adds one extra delivery).
func (n *Network) Duplicated() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].duplicated
	}
	return t
}

// Delayed returns the number of messages given extra latency by fault
// injection.
func (n *Network) Delayed() int64 {
	var t int64
	for i := range n.shards {
		t += n.shards[i].delayed
	}
	return t
}

// FaultDelayTicks returns the summed extra in-flight latency injected
// into delayed messages.
func (n *Network) FaultDelayTicks() sim.Time {
	var t sim.Time
	for i := range n.shards {
		t += n.shards[i].faultDelay
	}
	return t
}

// Endpoint is one process's mailbox. Create one per process with the
// hardware thread the process is bound to.
type Endpoint struct {
	net    *Network
	name   string
	idx    int // registration index within net
	thread machine.ThreadID
	k      *sim.Kernel // where the owner parks and deliveries land
	inbox  []Message
	rq     sim.WaitQueue // blocked receivers
}

// NewEndpoint registers a mailbox owned by a process on hardware
// thread t. On a sharded machine the endpoint is homed on the shard
// owning t; if the owning process actually runs elsewhere (a demoted
// group), rebind with BindKernel before any traffic flows.
func (n *Network) NewEndpoint(name string, t machine.ThreadID) *Endpoint {
	if int(t) < 0 || int(t) >= n.m.Cfg.NumThreads() {
		panic(fmt.Sprintf("msgpass: endpoint thread %d out of range", t))
	}
	ep := &Endpoint{net: n, name: name, idx: len(n.endpoints), thread: t, k: n.m.KernelFor(t)}
	n.endpoints = append(n.endpoints, ep)
	return ep
}

// BindKernel re-homes the endpoint's delivery/wake kernel. Receiver
// wakes are scheduled on this kernel, so it must be the kernel the
// owning process parks on. The core calls this when it places a group
// on a kernel other than the thread's home shard (demotion to the
// coordinator). Call before any traffic touches the endpoint.
func (e *Endpoint) BindKernel(k *sim.Kernel) { e.k = k }

// Kernel returns the kernel deliveries to e land on.
func (e *Endpoint) Kernel() *sim.Kernel { return e.k }

// Rebind moves the endpoint to hardware thread t: transfers sent after
// the rebind pay the link costs of the new coordinates. The delivery
// kernel is deliberately untouched — a live migration (core.Ctx.Rebind)
// happens under the kernel the owning process already parks on, and
// messages already in flight were costed at send time against the old
// coordinates, exactly as a wire transfer that departed before the move.
func (e *Endpoint) Rebind(t machine.ThreadID) {
	if int(t) < 0 || int(t) >= e.net.m.Cfg.NumThreads() {
		panic(fmt.Sprintf("msgpass: endpoint rebind thread %d out of range", t))
	}
	e.thread = t
}

// Index returns the endpoint's registration index — the stable
// coordinate checkpoints use in place of the pointer.
func (e *Endpoint) Index() int { return e.idx }

// NumEndpoints returns how many endpoints have been registered.
func (n *Network) NumEndpoints() int { return len(n.endpoints) }

// Endpoint returns the i'th registered endpoint.
func (n *Network) Endpoint(i int) *Endpoint { return n.endpoints[i] }

// Name returns the endpoint name.
func (e *Endpoint) Name() string { return e.name }

// Thread returns the owning hardware thread.
func (e *Endpoint) Thread() machine.ThreadID { return e.thread }

// Pending returns the number of messages already arrived and not yet
// received.
func (e *Endpoint) Pending() int { return len(e.inbox) }

// delay and bandwidth class for a transfer from thread a to thread b —
// the machine's hierarchical tier (same core, same chip, same cluster,
// cross-cluster; flat machines collapse to the original two tiers).
func (n *Network) linkCosts(a, b machine.ThreadID) (delay sim.Time, g float64, intra bool) {
	return n.m.Cfg.MsgLink(a, b)
}

// Send transmits payload from agent a to endpoint dst without blocking
// for delivery: the sender is charged the bandwidth (occupancy) cost and
// continues; the message arrives L ticks later. It returns the arrival
// time.
func (e *Endpoint) Send(a Agent, dst *Endpoint, payload any) sim.Time {
	return e.SendSized(a, dst, payload, 1)
}

// SendSized is Send for a long message of `words` payload words. Per
// the LogGP extension, injection occupies the sender for an extra
// (words−1)·G_word and the wire for the same, so the arrival time is
// L + (words−1)·G_word after the send instant.
func (e *Endpoint) SendSized(a Agent, dst *Endpoint, payload any, words int) sim.Time {
	if dst == nil {
		panic("msgpass: send to nil endpoint")
	}
	if words < 1 {
		words = 1
	}
	delay, g, intra := e.net.linkCosts(a.Thread(), dst.thread)
	if intra {
		a.Counters().SendsIntra++
	} else {
		a.Counters().SendsInter++
	}
	extra := float64(words-1) * e.net.m.Cfg.Costs.GMpWord
	// The message departs at the send instant; the bandwidth charge g
	// (plus the long-message serialization) is sender occupancy, paid
	// after injection (the model adds the L and g terms independently
	// in T_S-round).
	p := a.Proc()
	m := Message{From: e, Payload: payload, Words: words, SentAt: p.Now()}
	if pr := e.net.probe; pr != nil {
		m.hb = pr.MsgSend(e, dst, p)
	}
	wire := delay + sim.Time(extra)
	arrive := m.SentAt + wire

	// All send-side charges go to the sending process's shard — the
	// kernel context this code is executing in.
	ns := e.net.shardFor(p.Kernel())

	action, faultExtra := FaultNone, sim.Time(0)
	if e.net.faults != nil {
		action, faultExtra = e.net.faults.OnSend(e, dst, &m)
	}
	switch action {
	case FaultDrop:
		// Lost in flight. The sender cannot tell: it pays occupancy and
		// the returned arrival time is when the message would have
		// arrived.
		ns.dropped++
	case FaultDup:
		ns.duplicated++
		e.net.deliverFrom(p.Kernel(), ns, dst, m, wire)
		e.net.deliverFrom(p.Kernel(), ns, dst, m, wire)
		ns.wireTicks += 2 * wire
	case FaultDelay:
		if faultExtra < 0 {
			panic("msgpass: negative fault delay")
		}
		ns.delayed++
		ns.faultDelay += faultExtra
		arrive += faultExtra
		e.net.deliverFrom(p.Kernel(), ns, dst, m, wire+faultExtra)
		ns.wireTicks += wire + faultExtra
	default:
		e.net.deliverFrom(p.Kernel(), ns, dst, m, wire)
		ns.wireTicks += wire
	}
	ns.occupancy += g + extra
	// Injection occupancy may be fractional; ChargeCost both advances
	// the clock and attributes exactly the ticks it materializes, so
	// sender occupancy shows up under msgwait instead of being measured
	// as an (empty) elapsed-time window.
	a.ChargeCost(obs.CatMsgWait, g+extra)
	return arrive
}

// SendSync transmits like Send but blocks the sender until the message
// has arrived at dst — the paper's synch_comm behaviour for message
// passing ("blocked processes in message passing").
func (e *Endpoint) SendSync(a Agent, dst *Endpoint, payload any) {
	arrive := e.Send(a, dst, payload)
	p := a.Proc()
	if wait := arrive - p.Now(); wait > 0 {
		p.Hold(wait)
		a.Profile().Charge(obs.CatMsgWait, wait)
	}
}

// delivery is one scheduled in-flight message. Records are pooled per
// shard (netShard.freeDeliveries) and their kernel callback (run) is
// bound once at creation, so a steady-state intra-shard send schedules
// its arrival with no per-message allocation — the closure the
// callback used to be cost one closure plus a boxed Message copy per
// send.
type delivery struct {
	n   *Network
	ns  *netShard // pool the record recycles into (dst's shard)
	dst *Endpoint
	m   Message
	tok uint64
	run func() // d.deliver, bound once; reused across recycles
}

// deliver lands the message: it returns the record to the pool first
// (nothing below can schedule a new delivery synchronously), then
// appends to the inbox and wakes a blocked receiver.
func (d *delivery) deliver() {
	n, ns, dst, m, tok := d.n, d.ns, d.dst, d.m, d.tok
	d.ns, d.dst, d.m, d.tok = nil, nil, Message{}, 0
	ns.freeDeliveries = append(ns.freeDeliveries, d)

	k := dst.k
	m.Arrived = k.Now()
	dst.inbox = append(dst.inbox, m)
	if len(dst.inbox) > ns.maxInbox {
		ns.maxInbox = len(dst.inbox)
	}
	ns.delivered++
	if tok != 0 {
		n.recorder.Land(tok)
	}
	dst.rq.Signal(k)
}

// deliverFrom schedules the arrival of m at dst after delay, from a
// send executing on kernel src (ns is src's counter partial). When
// sender and receiver share a kernel this is the pooled local path;
// otherwise the arrival crosses shards as a buffered lookahead post.
func (n *Network) deliverFrom(src *sim.Kernel, ns *netShard, dst *Endpoint, m Message, delay sim.Time) {
	if src == dst.k {
		n.deliverLocal(dst, m, delay)
		return
	}
	// Cross-shard: observers are consulted synchronously in sender
	// context and would race (or observe out-of-window state) across
	// shards, so a sharded run must be observer-free on cross-shard
	// routes. Groups with observers installed are demoted to one shard
	// by the core, which makes every send local; reaching this panic
	// means an endpoint was rebound inconsistently.
	if n.faults != nil || n.probe != nil || n.recorder != nil {
		panic("msgpass: cross-shard send with a fault injector, probe or delivery recorder installed")
	}
	// The cross-shard path allocates (one closure + boxed Message per
	// send) — the price of leaving the shard; intra-shard traffic stays
	// on the pooled path.
	n.m.Shards().Post(n.shardIdx[src], n.shardIdx[dst.k], src.Now()+delay, func() {
		n.landCross(dst, m)
	})
}

// landCross lands a cross-shard message in dst's shard kernel context
// at its arrival time (the posted event's dispatch).
func (n *Network) landCross(dst *Endpoint, m Message) {
	k := dst.k
	ns := n.shardFor(k)
	m.Arrived = k.Now()
	dst.inbox = append(dst.inbox, m)
	if len(dst.inbox) > ns.maxInbox {
		ns.maxInbox = len(dst.inbox)
	}
	ns.delivered++
	dst.rq.Signal(k)
}

// deliverLocal schedules the arrival of m at dst after delay on dst's
// own kernel — the path for intra-shard sends (delay relative to the
// shared clock) and coordinator-context restores.
func (n *Network) deliverLocal(dst *Endpoint, m Message, delay sim.Time) {
	k := dst.k
	ns := n.shardFor(k)
	var tok uint64
	if n.recorder != nil {
		tok = n.recorder.Depart(dst, &m, k.Now()+delay)
	}
	var d *delivery
	if l := len(ns.freeDeliveries); l > 0 {
		d = ns.freeDeliveries[l-1]
		ns.freeDeliveries[l-1] = nil
		ns.freeDeliveries = ns.freeDeliveries[:l-1]
	} else {
		d = &delivery{n: n}
		d.run = d.deliver
	}
	d.ns, d.dst, d.m, d.tok = ns, dst, m, tok
	k.Schedule(delay, d.run)
}

// InboxMessage is a Message with its sender pointer replaced by the
// sender's endpoint index — the serializable form checkpoints store for
// both parked inbox contents and in-flight deliveries. The
// happens-before probe token is intentionally not preserved: the race
// detector and checkpointing address different runs (detection is a
// property of the uninterrupted execution), so tokens do not survive a
// restore.
type InboxMessage struct {
	From    int
	Payload any
	Words   int
	SentAt  sim.Time
	Arrived sim.Time
}

// SnapshotInbox returns the arrived-but-unreceived messages of e in
// FIFO order, in serializable form.
func (e *Endpoint) SnapshotInbox() []InboxMessage {
	if len(e.inbox) == 0 {
		return nil
	}
	out := make([]InboxMessage, len(e.inbox))
	for i, m := range e.inbox {
		out[i] = InboxMessage{
			From: m.From.idx, Payload: m.Payload, Words: m.Words,
			SentAt: m.SentAt, Arrived: m.Arrived,
		}
	}
	return out
}

// RestoreInbox replaces e's inbox with msgs (FIFO order preserved).
// Sender indices must refer to endpoints already registered on e's
// network.
func (e *Endpoint) RestoreInbox(msgs []InboxMessage) {
	e.inbox = e.inbox[:0]
	for _, im := range msgs {
		if im.From < 0 || im.From >= len(e.net.endpoints) {
			panic(fmt.Sprintf("msgpass: RestoreInbox sender index %d out of range", im.From))
		}
		e.inbox = append(e.inbox, Message{
			From: e.net.endpoints[im.From], Payload: im.Payload, Words: im.Words,
			SentAt: im.SentAt, Arrived: im.Arrived,
		})
	}
}

// ScheduleDelivery re-injects a checkpointed in-flight message: arrival
// of im at dst at absolute virtual time arrive. It routes through the
// normal delivery path, so the arrival counts toward the delivery
// statistics (as the original arrival would have) and is re-recorded by
// any installed DeliveryRecorder (so a later checkpoint sees it in
// flight again). The wire/occupancy charges are NOT re-applied — they
// were paid at the original send instant and live in the restored
// counter state.
func (n *Network) ScheduleDelivery(dst *Endpoint, im InboxMessage, arrive sim.Time) {
	if im.From < 0 || im.From >= len(n.endpoints) {
		panic(fmt.Sprintf("msgpass: ScheduleDelivery sender index %d out of range", im.From))
	}
	delay := arrive - dst.k.Now()
	if delay < 0 {
		panic("msgpass: ScheduleDelivery arrival in the past")
	}
	m := Message{From: n.endpoints[im.From], Payload: im.Payload, Words: im.Words, SentAt: im.SentAt}
	n.deliverLocal(dst, m, delay)
}

// NetState is the network's counter state in serializable form.
type NetState struct {
	Delivered  int64
	WireTicks  sim.Time
	Occupancy  float64
	MaxInbox   int
	Dropped    int64
	Duplicated int64
	Delayed    int64
	FaultDelay sim.Time
}

// State returns the network counters for checkpointing. The per-shard
// partials are folded: checkpoints store global sums, not the
// attribution, which is an implementation detail of parallel windows.
func (n *Network) State() NetState {
	return NetState{
		Delivered: n.Delivered(), WireTicks: n.WireTicks(), Occupancy: n.OccupancyTicks(),
		MaxInbox: n.MaxInboxDepth(), Dropped: n.Dropped(), Duplicated: n.Duplicated(),
		Delayed: n.Delayed(), FaultDelay: n.FaultDelayTicks(),
	}
}

// RestoreState overwrites the network counters from a checkpoint: the
// restored sums land on shard 0's partial and the rest are zeroed, so
// subsequent folds start from exactly the checkpointed totals.
func (n *Network) RestoreState(s NetState) {
	for i := range n.shards {
		fd := n.shards[i].freeDeliveries
		n.shards[i] = netShard{freeDeliveries: fd}
	}
	ns := &n.shards[0]
	ns.delivered, ns.wireTicks, ns.occupancy = s.Delivered, s.WireTicks, s.Occupancy
	ns.maxInbox, ns.dropped, ns.duplicated = s.MaxInbox, s.Dropped, s.Duplicated
	ns.delayed, ns.faultDelay = s.Delayed, s.FaultDelay
}

// Recv blocks agent a until a message is available in its endpoint e,
// then removes and returns the oldest one, charging receive cost.
func (e *Endpoint) Recv(a Agent) Message {
	p := a.Proc()
	t0 := p.Now()
	for len(e.inbox) == 0 {
		before := p.Now()
		e.rq.Wait(p)
		a.Counters().QueueWait += p.Now() - before
	}
	return e.take(a, p, t0)
}

// StepRecvState carries one in-progress step-mode receive across
// activation boundaries (the locals Recv keeps on its stack). The zero
// value begins a fresh receive; a completed StepRecv resets it.
type StepRecvState struct {
	t0      sim.Time
	before  sim.Time
	began   bool
	waiting bool
}

// StepRecv is Recv for step-proc activations: when a message is
// available it dequeues and charges exactly as Recv does and returns
// ok=true; when the inbox is empty it enrolls the proc on the receive
// queue at an activation boundary and returns ok=false — the
// activation must return its continuation and call StepRecv again (with
// the same state) when it resumes. Wait-time accounting, re-waits
// after a lost race for the message, and the dispatch order are all
// identical to a goroutine proc blocking in Recv.
func (e *Endpoint) StepRecv(a Agent, st *StepRecvState) (Message, bool) {
	p := a.Proc()
	if !st.began {
		st.began = true
		st.t0 = p.Now()
	}
	if st.waiting {
		st.waiting = false
		a.Counters().QueueWait += p.Now() - st.before
	}
	if len(e.inbox) == 0 {
		st.before = p.Now()
		st.waiting = true
		e.rq.Enroll(p)
		return Message{}, false
	}
	m := e.take(a, p, st.t0)
	st.began = false
	return m, true
}

// RecvTimeout is Recv with a deadline: it blocks until a message is
// available or d ticks elapse, whichever comes first, and reports
// which. The timed-out wait is counted in the QueueWait counter but
// NOT charged to the profile — the caller knows why it was waiting and
// charges the category itself (internal/fault's reliable layer charges
// CatFault, keeping recovery overhead separate from productive message
// waits). Same-tick arrival-versus-expiry races resolve
// deterministically by kernel event order.
func (e *Endpoint) RecvTimeout(a Agent, d sim.Time) (Message, bool) {
	if d < 0 {
		panic("msgpass: negative receive timeout")
	}
	p := a.Proc()
	t0 := p.Now()
	deadline := t0 + d
	for len(e.inbox) == 0 {
		remain := deadline - p.Now()
		if remain <= 0 {
			return Message{}, false
		}
		before := p.Now()
		signaled := e.rq.WaitTimeout(p, remain)
		a.Counters().QueueWait += p.Now() - before
		if !signaled && len(e.inbox) == 0 {
			return Message{}, false
		}
	}
	return e.take(a, p, t0), true
}

// take dequeues the oldest arrived message and charges receive cost:
// the blocked window since t0 is msgwait, and the drain occupancy g
// (possibly fractional) goes through ChargeCost so it is attributed
// exactly, with per-category carry.
func (e *Endpoint) take(a Agent, p *sim.Proc, t0 sim.Time) Message {
	m := e.inbox[0]
	copy(e.inbox, e.inbox[1:])
	e.inbox[len(e.inbox)-1] = Message{}
	e.inbox = e.inbox[:len(e.inbox)-1]

	_, g, intra := e.net.linkCosts(m.From.thread, e.thread)
	if intra {
		a.Counters().RecvsIntra++
	} else {
		a.Counters().RecvsInter++
	}
	extra := 0.0
	if m.Words > 1 {
		extra = float64(m.Words-1) * e.net.m.Cfg.Costs.GMpWord
	}
	// Drain occupancy belongs to the receiving process's shard — again
	// the executing kernel context.
	e.net.shardFor(p.Kernel()).occupancy += g + extra
	a.Profile().Charge(obs.CatMsgWait, p.Now()-t0)
	a.ChargeCost(obs.CatMsgWait, g+extra)
	if pr := e.net.probe; pr != nil && m.hb != 0 {
		pr.MsgRecv(e, p, m.hb)
	}
	return m
}

// TryRecv returns the oldest arrived message without blocking; ok is
// false if none has arrived.
func (e *Endpoint) TryRecv(a Agent) (Message, bool) {
	if len(e.inbox) == 0 {
		return Message{}, false
	}
	return e.Recv(a), true
}

// RecvN receives exactly n messages, blocking as needed.
func (e *Endpoint) RecvN(a Agent, n int) []Message {
	out := make([]Message, 0, n)
	for len(out) < n {
		out = append(out, e.Recv(a))
	}
	return out
}

// Broadcast sends payload from agent a (owner of e) to every endpoint
// in dsts, skipping e itself.
func (e *Endpoint) Broadcast(a Agent, dsts []*Endpoint, payload any) {
	for _, d := range dsts {
		if d == e {
			continue
		}
		e.Send(a, d, payload)
	}
}
