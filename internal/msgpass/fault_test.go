package msgpass

import (
	"testing"

	"repro/internal/agenttest"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// scriptInjector replays a fixed list of actions, one per send, then
// delivers everything after the script runs out.
type scriptInjector struct {
	actions []FaultAction
	delay   sim.Time
	i       int
}

func (s *scriptInjector) OnSend(src, dst *Endpoint, m *Message) (FaultAction, sim.Time) {
	if s.i >= len(s.actions) {
		return FaultNone, 0
	}
	a := s.actions[s.i]
	s.i++
	return a, s.delay
}

// TestFaultDropLosesMessage: a dropped message charges the sender but
// never arrives; the receiver's timed wait expires.
func TestFaultDropLosesMessage(t *testing.T) {
	k, net := rig(machine.Niagara())
	net.SetFaultInjector(&scriptInjector{actions: []FaultAction{FaultDrop}})
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 8) // another core: LE=20
	k.Spawn("sender", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		src.Send(a, dst, "doomed")
		if a.C.SendsInter != 1 {
			t.Error("dropped send not counted against the sender")
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		a := agenttest.New(p, 8)
		if _, ok := dst.RecvTimeout(a, 100); ok {
			t.Error("received a dropped message")
		}
		if p.Now() != 100 {
			t.Errorf("timeout returned at t=%d, want 100", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Dropped() != 1 || net.Delivered() != 0 {
		t.Fatalf("dropped=%d delivered=%d, want 1,0", net.Dropped(), net.Delivered())
	}
}

// TestFaultDupDeliversTwice: one send, two arrivals, counted once as a
// duplication and twice as deliveries.
func TestFaultDupDeliversTwice(t *testing.T) {
	k, net := rig(machine.Niagara())
	net.SetFaultInjector(&scriptInjector{actions: []FaultAction{FaultDup}})
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 8)
	k.Spawn("sender", func(p *sim.Proc) {
		src.Send(agenttest.New(p, 0), dst, 42)
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		a := agenttest.New(p, 8)
		m1, m2 := dst.Recv(a), dst.Recv(a)
		if m1.Payload != 42 || m2.Payload != 42 || m1.Arrived != m2.Arrived {
			t.Errorf("dup copies differ: %+v vs %+v", m1, m2)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Duplicated() != 1 || net.Delivered() != 2 {
		t.Fatalf("duplicated=%d delivered=%d, want 1,2", net.Duplicated(), net.Delivered())
	}
}

// TestFaultDelayAddsLatency: a delayed message arrives exactly
// LE + delay after the send.
func TestFaultDelayAddsLatency(t *testing.T) {
	k, net := rig(machine.Niagara()) // LE=20
	net.SetFaultInjector(&scriptInjector{actions: []FaultAction{FaultDelay}, delay: 13})
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 8)
	k.Spawn("sender", func(p *sim.Proc) {
		if arrive := src.Send(agenttest.New(p, 0), dst, "late"); arrive != 33 {
			t.Errorf("predicted arrival %d, want 33", arrive)
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		m := dst.Recv(agenttest.New(p, 8))
		if m.Arrived != 33 {
			t.Errorf("arrived at %d, want 33", m.Arrived)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Delayed() != 1 || net.FaultDelayTicks() != 13 {
		t.Fatalf("delayed=%d ticks=%d, want 1,13", net.Delayed(), net.FaultDelayTicks())
	}
}

// TestRecvTimeoutDeliveredInTime: a message arriving inside the window
// is received normally and the wait is charged to msgwait.
func TestRecvTimeoutDeliveredInTime(t *testing.T) {
	k, net := rig(machine.Niagara())
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 8)
	k.Spawn("sender", func(p *sim.Proc) {
		src.Send(agenttest.New(p, 0), dst, "x")
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		a := agenttest.New(p, 8)
		a.Prof = &obs.ProcProfile{Name: "receiver"}
		m, ok := dst.RecvTimeout(a, 100)
		if !ok || m.Payload != "x" {
			t.Fatalf("RecvTimeout = %+v, %v", m, ok)
		}
		if p.Now() != 22 { // LE wait + whole-tick drain occupancy GMpE
			t.Errorf("received at t=%d, want 22", p.Now())
		}
		// The blocked window (20 ticks) plus whole-tick drain occupancy
		// (GMpE=2) is msgwait.
		if got := a.Prof.Cats[obs.CatMsgWait]; got != 22 {
			t.Errorf("msgwait = %d, want 22", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRecvTimeoutExpiryChargesNothing: on expiry the profile stays
// untouched (the caller attributes the loss; internal/fault uses
// CatFault), while the QueueWait counter records the blocked window.
func TestRecvTimeoutExpiryChargesNothing(t *testing.T) {
	k, net := rig(machine.Niagara())
	dst := net.NewEndpoint("dst", 0)
	k.Spawn("receiver", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		a.Prof = &obs.ProcProfile{Name: "receiver"}
		if _, ok := dst.RecvTimeout(a, 37); ok {
			t.Fatal("received from an empty network")
		}
		if a.C.QueueWait != 37 {
			t.Errorf("QueueWait = %d, want 37", a.C.QueueWait)
		}
		var zero obs.CatTimes
		if a.Prof.Cats != zero {
			t.Errorf("profile charged on timeout: %v", a.Prof.Cats)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSenderOccupancyAttributed is the SendSized charge bugfix pinned:
// fractional per-message occupancy must accumulate into msgwait ticks
// (previously it was measured as an elapsed-time window around a
// fractional accrual, so sender occupancy could never be attributed).
func TestSenderOccupancyAttributed(t *testing.T) {
	cfg := machine.Niagara()
	cfg.Costs.GMpA = 0.5 // fractional: 4 sends must yield exactly 2 ticks
	k, net := rig(cfg)
	src := net.NewEndpoint("src", 0)
	dst := net.NewEndpoint("dst", 1) // same core: intra
	k.Spawn("sender", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		a.Prof = &obs.ProcProfile{Name: "sender"}
		for i := 0; i < 4; i++ {
			src.Send(a, dst, i)
		}
		if p.Now() != 2 {
			t.Errorf("4 sends advanced clock to %d, want 2", p.Now())
		}
		if got := a.Prof.Cats[obs.CatMsgWait]; got != 2 {
			t.Errorf("sender msgwait = %d, want 2", got)
		}
		a.Prof.Finish(p.Now())
		if a.Prof.Sum() != p.Now() {
			t.Errorf("profile sums to %d, want T=%d", a.Prof.Sum(), p.Now())
		}
	})
	k.Spawn("drain", func(p *sim.Proc) {
		a := agenttest.New(p, 1)
		for i := 0; i < 4; i++ {
			dst.Recv(a)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
