package machine

import (
	"strings"
	"testing"
)

func TestWithCoreFreqValidates(t *testing.T) {
	cfg := Niagara()
	freq := make([]float64, 8)
	for i := range freq {
		freq[i] = 1
	}
	freq[0] = 2
	h := cfg.WithCoreFreq(freq)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.CoreMult(0) != 2 || h.CoreMult(1) != 1 {
		t.Fatalf("core mults: %g %g", h.CoreMult(0), h.CoreMult(1))
	}
	if h.Homogeneous() {
		t.Fatal("heterogeneous machine reported homogeneous")
	}
	if !cfg.Homogeneous() {
		t.Fatal("default machine reported heterogeneous")
	}
}

func TestWithCoreFreqCopies(t *testing.T) {
	freq := make([]float64, 8)
	for i := range freq {
		freq[i] = 1
	}
	h := Niagara().WithCoreFreq(freq)
	freq[3] = 99
	if h.CoreFreq[3] == 99 {
		t.Fatal("WithCoreFreq aliases the caller's slice")
	}
}

func TestWithCoreFreqPanics(t *testing.T) {
	cases := []func(){
		func() { Niagara().WithCoreFreq([]float64{1, 2}) },
		func() { Niagara().WithCoreFreq(make([]float64, 8)) }, // zeros
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValidateRejectsBadCoreFreq(t *testing.T) {
	cfg := Niagara()
	cfg.CoreFreq = []float64{1, 1} // wrong length
	if err := cfg.Validate(); err == nil {
		t.Fatal("short CoreFreq validated")
	}
	cfg.CoreFreq = make([]float64, 8) // zeros
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero CoreFreq validated")
	}
}

func TestBigLittlePreset(t *testing.T) {
	cfg := BigLittle(2, 2, 0.5)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CoreMult(0) != 2 || cfg.CoreMult(1) != 2 {
		t.Fatal("big cores wrong")
	}
	for c := 2; c < 8; c++ {
		if cfg.CoreMult(c) != 0.5 {
			t.Fatalf("little core %d mult %g", c, cfg.CoreMult(c))
		}
	}
	if !strings.Contains(cfg.Name, "biglittle") {
		t.Fatalf("name %q", cfg.Name)
	}
}

func TestComputeTimeAndEnergyScale(t *testing.T) {
	cfg := BigLittle(1, 2, 0.5)
	// 100 ops of latency 1 on the 2× core: 50 ticks; on a 0.5× core:
	// 200 ticks.
	if got := cfg.ComputeTime(0, 100, 1); got != 50 {
		t.Fatalf("big compute time %g", got)
	}
	if got := cfg.ComputeTime(5, 100, 1); got != 200 {
		t.Fatalf("little compute time %g", got)
	}
	// Energy per op: mult².
	if cfg.ComputeEnergyScale(0) != 4 || cfg.ComputeEnergyScale(5) != 0.25 {
		t.Fatalf("energy scales %g %g", cfg.ComputeEnergyScale(0), cfg.ComputeEnergyScale(5))
	}
	// f³ power law per core: (E·mult²)/(T/mult) = base · mult³.
	basePower := 1.0
	bigPower := (100.0 * cfg.ComputeEnergyScale(0)) / cfg.ComputeTime(0, 100, 1)
	if bigPower != basePower*8 {
		t.Fatalf("big core power %g, want 8 (2³)", bigPower)
	}
}
