package machine

import "fmt"

// Heterogeneity support: the paper motivates models "general enough to
// embrace new emerging paradigms such as adaptive and heterogeneous
// computations" (§1) and notes that asynchronous STAMP algorithms can
// run "even when the processors' available power and processing speeds
// vary" (§4). CoreFreq gives each processor its own clock multiplier:
// local operations on a core with multiplier s run s× faster and cost
// s² more energy each (the same f³ power law AtFrequency implements
// globally).

// WithCoreFreq returns a copy of the config with per-core frequency
// multipliers. freq must have NumCores entries, all positive.
func (c Config) WithCoreFreq(freq []float64) Config {
	if len(freq) != c.NumCores() {
		panic(fmt.Sprintf("machine: CoreFreq needs %d entries, got %d", c.NumCores(), len(freq)))
	}
	for i, f := range freq {
		if f <= 0 {
			panic(fmt.Sprintf("machine: CoreFreq[%d] = %g must be positive", i, f))
		}
	}
	s := c
	s.CoreFreq = append([]float64(nil), freq...)
	return s
}

// SetCoreMult changes one core's frequency multiplier on a live
// machine — the DVFS actuation behind the adaptive controller's
// throttle response (internal/adapt). Time already charged keeps the
// cost computed at charge time; only later operations on the core see
// the new clock, so callers must apply it at a quiescent instant (a
// barrier generation, with batched compute flushed) for the accounting
// to stay deterministic. Note that the energy report applies one
// per-core scale to a member's whole op history (energy.EnergyScaled),
// so a mid-run clock change coarsens E on the throttled core — the
// same whole-run granularity Config.AtFrequency has always had. The
// multiplier must be positive.
func (m *Machine) SetCoreMult(core int, mult float64) {
	if core < 0 || core >= m.Cfg.NumCores() {
		panic(fmt.Sprintf("machine: SetCoreMult core %d out of range", core))
	}
	if mult <= 0 {
		panic(fmt.Sprintf("machine: SetCoreMult(%d, %g): multiplier must be positive", core, mult))
	}
	if m.Cfg.CoreFreq == nil {
		f := make([]float64, m.Cfg.NumCores())
		for i := range f {
			f[i] = 1
		}
		m.Cfg.CoreFreq = f
	}
	m.Cfg.CoreFreq[core] = mult
}

// BigLittle returns a heterogeneous single-chip machine in the
// big.LITTLE style: nBig fast cores at bigMult and the rest at
// littleMult, with Niagara-like threading.
func BigLittle(nBig int, bigMult, littleMult float64) Config {
	cfg := Niagara()
	cfg.Name = fmt.Sprintf("biglittle-%dx%g+%dx%g", nBig, bigMult, cfg.CoresPerChip-nBig, littleMult)
	freq := make([]float64, cfg.NumCores())
	for i := range freq {
		if i < nBig {
			freq[i] = bigMult
		} else {
			freq[i] = littleMult
		}
	}
	return cfg.WithCoreFreq(freq)
}

// CoreMult returns the frequency multiplier of a core (1 when the
// machine is homogeneous).
func (c Config) CoreMult(core int) float64 {
	if c.CoreFreq == nil {
		return 1
	}
	return c.CoreFreq[core]
}

// Homogeneous reports whether all cores share the nominal clock.
func (c Config) Homogeneous() bool {
	for _, f := range c.CoreFreq {
		if f != 1 {
			return false
		}
	}
	return true
}

// ComputeTime returns the virtual time of n local operations of base
// per-op latency t on the given core.
func (c Config) ComputeTime(core int, n int64, t float64) float64 {
	return float64(n) * t / c.CoreMult(core)
}

// ComputeEnergyScale returns the per-op energy multiplier of a core
// (mult², per the dynamic power law).
func (c Config) ComputeEnergyScale(core int) float64 {
	m := c.CoreMult(core)
	return m * m
}
