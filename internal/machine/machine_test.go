package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNiagaraTopologyMatchesFigure1(t *testing.T) {
	cfg := Niagara()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumCores() != 8 {
		t.Fatalf("niagara cores = %d, want 8", cfg.NumCores())
	}
	if cfg.NumThreads() != 32 {
		t.Fatalf("niagara threads = %d, want 32", cfg.NumThreads())
	}
}

func TestPlaceRoundTrip(t *testing.T) {
	for _, cfg := range []Config{Niagara(), Generic(), SingleCore()} {
		for id := 0; id < cfg.NumThreads(); id++ {
			chip, core, thread := cfg.Place(ThreadID(id))
			back := (chip*cfg.CoresPerChip+core)*cfg.ThreadsPerCore + thread
			if back != id {
				t.Fatalf("%s: Place(%d) = (%d,%d,%d) does not round-trip (got %d)",
					cfg.Name, id, chip, core, thread, back)
			}
			if got := cfg.CoreOf(ThreadID(id)); got != chip*cfg.CoresPerChip+core {
				t.Fatalf("%s: CoreOf(%d) = %d", cfg.Name, id, got)
			}
			if got := cfg.ChipOf(ThreadID(id)); got != chip {
				t.Fatalf("%s: ChipOf(%d) = %d, want %d", cfg.Name, id, got, chip)
			}
		}
	}
}

func TestPlaceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range thread id")
		}
	}()
	Niagara().Place(ThreadID(32))
}

func TestSameCoreSameChip(t *testing.T) {
	cfg := Niagara() // 4 threads per core
	if !cfg.SameCore(0, 3) {
		t.Error("threads 0 and 3 should share a core")
	}
	if cfg.SameCore(3, 4) {
		t.Error("threads 3 and 4 should not share a core")
	}
	if !cfg.SameChip(0, 31) {
		t.Error("single-chip niagara: all threads share the chip")
	}
	g := Generic() // 4 chips × 4 cores × 2 threads
	if g.SameChip(0, 8) {
		t.Error("generic: threads 0 and 8 are on different chips")
	}
	if !g.SameChip(0, 7) {
		t.Error("generic: threads 0 and 7 share chip 0")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Name: "no-chips", Chips: 0, CoresPerChip: 1, ThreadsPerCore: 1, FreqMult: 1, Costs: DefaultCosts()},
		{Name: "no-freq", Chips: 1, CoresPerChip: 1, ThreadsPerCore: 1, FreqMult: 0, Costs: DefaultCosts()},
		func() Config {
			c := SingleCore()
			c.Costs.TInt = 0
			return c
		}(),
		func() Config {
			c := SingleCore()
			c.Costs.GShA = -1
			return c
		}(),
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q validated but should not", c.Name)
		}
	}
}

func TestAtFrequencyPowerLaw(t *testing.T) {
	base := Niagara()
	half := base.AtFrequency(0.5)
	// perf ∝ f: ops take twice as long
	if half.Costs.TInt != 2*base.Costs.TInt || half.Costs.TFp != 2*base.Costs.TFp {
		t.Fatalf("half-freq latencies: TInt=%d TFp=%d", half.Costs.TInt, half.Costs.TFp)
	}
	// energy per op ∝ f²
	if half.Costs.WInt != base.Costs.WInt/4 {
		t.Fatalf("half-freq WInt = %g, want %g", half.Costs.WInt, base.Costs.WInt/4)
	}
	// power per op stream ∝ f³: (w/4) / (2t) = (w/t)/8
	basePower := base.Costs.WInt / float64(base.Costs.TInt)
	halfPower := half.Costs.WInt / float64(half.Costs.TInt)
	if want := basePower / 8; halfPower != want {
		t.Fatalf("half-freq power %g, want %g (f³ law)", halfPower, want)
	}
}

func TestAtFrequencyLatencyNeverBelowOneTick(t *testing.T) {
	cfg := Niagara().AtFrequency(10)
	if cfg.Costs.TInt < 1 || cfg.Costs.TFp < 1 {
		t.Fatalf("latencies dropped below one tick: %d %d", cfg.Costs.TInt, cfg.Costs.TFp)
	}
}

func TestAtFrequencyComposes(t *testing.T) {
	cfg := Niagara().AtFrequency(0.5).AtFrequency(2)
	if cfg.FreqMult != 1 {
		t.Fatalf("composed FreqMult = %g, want 1", cfg.FreqMult)
	}
}

func TestDescribeMentionsEveryCore(t *testing.T) {
	s := Niagara().Describe()
	for core := 0; core < 8; core++ {
		if !strings.Contains(s, "core") {
			t.Fatalf("describe missing cores:\n%s", s)
		}
	}
	if !strings.Contains(s, "T31") {
		t.Fatalf("describe missing last thread:\n%s", s)
	}
	if !strings.Contains(s, "32 hardware threads") {
		t.Fatalf("describe missing thread total:\n%s", s)
	}
}

func TestMachineOccupancy(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, Niagara())
	m.Bind(0)
	m.Bind(1)
	m.Bind(1)
	if m.Occupancy(1) != 2 {
		t.Fatalf("occupancy(1) = %d, want 2", m.Occupancy(1))
	}
	if m.CoreOccupancy(0) != 3 {
		t.Fatalf("core occupancy = %d, want 3", m.CoreOccupancy(0))
	}
	if got := m.FreeThreadOnCore(0); got != 2 {
		t.Fatalf("free thread = %d, want 2", got)
	}
	m.Release(1)
	if m.Occupancy(1) != 1 {
		t.Fatalf("occupancy(1) after release = %d", m.Occupancy(1))
	}
	// Fill core 1 completely.
	for th := 4; th < 8; th++ {
		m.Bind(ThreadID(th))
	}
	if got := m.FreeThreadOnCore(1); got != -1 {
		t.Fatalf("full core reported free thread %d", got)
	}
}

func TestReleaseUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release of unoccupied thread did not panic")
		}
	}()
	m := New(sim.NewKernel(), Niagara())
	m.Release(5)
}

func TestPlacePropertyQuick(t *testing.T) {
	cfg := Generic()
	f := func(raw uint16) bool {
		id := int(raw) % cfg.NumThreads()
		chip, core, thread := cfg.Place(ThreadID(id))
		return chip >= 0 && chip < cfg.Chips &&
			core >= 0 && core < cfg.CoresPerChip &&
			thread >= 0 && thread < cfg.ThreadsPerCore
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterTopology(t *testing.T) {
	cfg := Cluster(2, 2, 2, 2) // 2 clusters × 2 chips × 2 cores × 2 threads
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Chips != 4 || cfg.NumThreads() != 16 {
		t.Fatalf("Cluster(2,2,2,2): chips=%d threads=%d", cfg.Chips, cfg.NumThreads())
	}
	if got := cfg.NumClusters(); got != 2 {
		t.Fatalf("NumClusters = %d, want 2", got)
	}
	// Threads are chip-major: chip = t/4, cluster = chip/2.
	if cfg.ClusterOf(0) != 0 || cfg.ClusterOf(7) != 0 || cfg.ClusterOf(8) != 1 || cfg.ClusterOf(15) != 1 {
		t.Fatalf("ClusterOf: %d %d %d %d", cfg.ClusterOf(0), cfg.ClusterOf(7), cfg.ClusterOf(8), cfg.ClusterOf(15))
	}
	if !cfg.SameCluster(0, 7) || cfg.SameCluster(7, 8) {
		t.Fatal("SameCluster boundary wrong")
	}
	// Flat configs stay one cluster.
	if got := Generic().NumClusters(); got != 1 {
		t.Fatalf("Generic NumClusters = %d, want 1", got)
	}
	if Generic().ClusterOf(30) != 0 {
		t.Fatal("flat ClusterOf != 0")
	}
}

func TestMsgLinkTiers(t *testing.T) {
	cfg := Cluster(2, 2, 2, 2)
	cases := []struct {
		a, b  ThreadID
		delay sim.Time
		g     float64
		intra bool
		tier  string
	}{
		{0, 1, cfg.Costs.LA, cfg.Costs.GMpA, true, "same core"},
		{0, 2, cfg.Costs.LE, cfg.Costs.GMpE, false, "same chip"},
		{0, 4, cfg.Costs.LX, cfg.Costs.GMpX, false, "same cluster"},
		{0, 8, cfg.Costs.LC, cfg.Costs.GMpC, false, "cross cluster"},
	}
	for _, c := range cases {
		d, g, intra := cfg.MsgLink(c.a, c.b)
		if d != c.delay || g != c.g || intra != c.intra {
			t.Errorf("%s: MsgLink(%d,%d) = (%d,%v,%v), want (%d,%v,%v)",
				c.tier, c.a, c.b, d, g, intra, c.delay, c.g, c.intra)
		}
	}
}

func TestMsgLinkFlatFallback(t *testing.T) {
	// On a flat config the upper tiers fall back to LE/GMpE, so MsgLink
	// reproduces the original two-tier behaviour exactly.
	cfg := Generic()
	d, g, intra := cfg.MsgLink(0, ThreadID(cfg.NumThreads()-1))
	if d != cfg.Costs.LE || g != cfg.Costs.GMpE || intra {
		t.Fatalf("flat cross-chip MsgLink = (%d,%v,%v), want (%d,%v,false)", d, g, intra, cfg.Costs.LE, cfg.Costs.GMpE)
	}
	d, g, intra = cfg.MsgLink(0, 1)
	if d != cfg.Costs.LA || g != cfg.Costs.GMpA || !intra {
		t.Fatalf("flat same-core MsgLink = (%d,%v,%v)", d, g, intra)
	}
}

func TestEffFallbackChain(t *testing.T) {
	var ct CostTable
	ct.LE = 20
	ct.GMpE = 2
	if ct.EffLX() != 20 || ct.EffLC() != 20 || ct.EffGMpX() != 2 || ct.EffGMpC() != 2 {
		t.Fatal("unset tiers must fall back to LE/GMpE")
	}
	ct.LX = 40
	ct.GMpX = 3
	if ct.EffLC() != 40 || ct.EffGMpC() != 3 {
		t.Fatal("unset LC must fall back to LX")
	}
	ct.LC = 100
	ct.GMpC = 4
	if ct.EffLC() != 100 || ct.EffGMpC() != 4 {
		t.Fatal("set LC must win")
	}
}

func TestInterChipLookahead(t *testing.T) {
	if got := Cluster(2, 2, 2, 2).InterChipLookahead(); got != 40 {
		t.Fatalf("clustered lookahead = %d, want 40 (LX < LC)", got)
	}
	if got := Generic().InterChipLookahead(); got != Generic().Costs.LE {
		t.Fatalf("flat lookahead = %d, want LE", got)
	}
}

func TestNewShardedMapping(t *testing.T) {
	cfg := Cluster(2, 2, 2, 2) // 4 chips
	sg := sim.NewShardGroup(2, cfg.InterChipLookahead())
	m := NewSharded(sg, cfg)
	if !m.Sharded() || m.Shards() != sg {
		t.Fatal("sharded accessors wrong")
	}
	if m.K != sg.Shard(0) {
		t.Fatal("machine coordinator kernel must be shard 0")
	}
	// chip·S/Chips with 4 chips, 2 shards: chips 0,1 → shard 0; 2,3 → shard 1.
	want := []int{0, 0, 1, 1}
	for chip, ws := range want {
		th := ThreadID(chip * cfg.CoresPerChip * cfg.ThreadsPerCore)
		if got := m.ShardOfThread(th); got != ws {
			t.Errorf("chip %d shard = %d, want %d", chip, got, ws)
		}
		if m.KernelFor(th) != sg.Shard(ws) {
			t.Errorf("chip %d KernelFor wrong", chip)
		}
	}
	// Shard boundaries align with cluster boundaries here.
	if m.ShardOfThread(7) != 0 || m.ShardOfThread(8) != 1 {
		t.Fatal("shard boundary misaligned with cluster boundary")
	}
	// Unsharded machine: everything shard 0 / kernel K.
	k := sim.NewKernel()
	flat := New(k, Generic())
	if flat.Sharded() || flat.ShardOfThread(9) != 0 || flat.KernelFor(9) != k {
		t.Fatal("unsharded machine shard accessors wrong")
	}
}

func TestNewShardedTooManyShardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shards > chips did not panic")
		}
	}()
	NewSharded(sim.NewShardGroup(3, 10), Config{
		Name: "tiny", Chips: 2, CoresPerChip: 1, ThreadsPerCore: 1, FreqMult: 1, Costs: DefaultCosts(),
	})
}
