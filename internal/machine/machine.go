// Package machine models the CMP/CMT target machines of the STAMP paper:
// chips containing processors (cores), each processor running several
// hardware threads (Sun Niagara being the motivating example, Figure 1).
//
// A machine is pure configuration — topology plus the paper's cost
// parameter table (§3.1) and a dynamic power model (§2.1, P ∝ f³) — and
// a thread-occupancy map. All time charging happens in higher layers
// that consult the table.
package machine

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ThreadID identifies one hardware thread slot, numbered
// chip-major/core-major: id = (chip*CoresPerChip + core)*ThreadsPerCore + thread.
type ThreadID int

// Config describes a CMP/CMT machine.
type Config struct {
	Name           string
	Chips          int // number of CMP chips
	CoresPerChip   int // processors per chip
	ThreadsPerCore int // hardware threads per processor (CMT)

	// FreqMult is the clock multiplier relative to the nominal design
	// point. Local-op latencies scale as 1/FreqMult, per-op energies as
	// FreqMult², so power scales as FreqMult³ (§2.1).
	FreqMult float64

	// CoreFreq optionally gives each processor its own additional
	// clock multiplier (heterogeneous machines); nil means homogeneous.
	// Use WithCoreFreq to set it with validation.
	CoreFreq []float64

	Costs CostTable

	// PowerLimitPerCore is the power envelope of one processor in
	// energy units per tick (0 = unlimited). The paper's Jacobi example
	// sets this to 3(x+y)·w_int.
	PowerLimitPerCore float64
	// PowerLimitPerChip is the envelope of a whole chip (0 = unlimited).
	PowerLimitPerChip float64
}

// CostTable carries the STAMP model's machine parameters (§3.1).
// Times are in ticks; energies in abstract energy units; bandwidth
// factors g are ticks charged per communication operation.
type CostTable struct {
	// Local computation: ticks per floating-point / integer operation.
	TFp, TInt sim.Time

	// Shared-memory access latency upper bounds ℓ_a (intra-processor,
	// e.g. shared L1) and ℓ_e (inter-processor, e.g. shared L2).
	EllA, EllE sim.Time
	// Shared-memory bandwidth factors g_sh_a, g_sh_e.
	GShA, GShE float64

	// Message delays L_a (intra-processor) and L_e (inter-processor).
	LA, LE sim.Time
	// Message-passing bandwidth factors g_mp_a, g_mp_e.
	GMpA, GMpE float64
	// GMpWord is the extra per-word cost of long messages (the LogGP
	// "big gap" G); 0 means message size is ignored.
	GMpWord float64

	// Per-operation energies: w_fp, w_int, w_dr, w_dw, w_ms, w_mr.
	// The paper assumes intra/inter energy differences are negligible,
	// so there is one value per operation class.
	WFp, WInt, WRead, WWrite, WSend, WRecv float64
}

// DefaultCosts returns the cost table used throughout the test suite and
// benchmarks. It satisfies the paper's §4 assumptions: w_fp = x·w_int and
// w_ms = w_mr = y·w_int with x, y ≥ 2, and the Jacobi lower bound L ≥ 5.
func DefaultCosts() CostTable {
	return CostTable{
		TFp: 1, TInt: 1,
		EllA: 1, EllE: 4,
		GShA: 1, GShE: 2,
		LA: 5, LE: 20,
		GMpA: 1, GMpE: 2,
		WFp: 2, WInt: 1, WRead: 2, WWrite: 2, WSend: 3, WRecv: 3,
	}
}

// Niagara returns the Sun Niagara configuration of Figure 1: one chip
// with 8 simple cores of 4 hardware threads each (32 threads total).
func Niagara() Config {
	return Config{
		Name:           "niagara",
		Chips:          1,
		CoresPerChip:   8,
		ThreadsPerCore: 4,
		FreqMult:       1,
		Costs:          DefaultCosts(),
	}
}

// Generic returns a small multi-chip CMP system: 4 chips × 4 cores × 2
// threads (32 threads total), for experiments that need inter-chip
// distribution.
func Generic() Config {
	return Config{
		Name:           "generic-cmp",
		Chips:          4,
		CoresPerChip:   4,
		ThreadsPerCore: 2,
		FreqMult:       1,
		Costs:          DefaultCosts(),
	}
}

// SingleCore returns a 1×1×1 machine for sequential baselines.
func SingleCore() Config {
	return Config{
		Name:           "single-core",
		Chips:          1,
		CoresPerChip:   1,
		ThreadsPerCore: 1,
		FreqMult:       1,
		Costs:          DefaultCosts(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Chips < 1 || c.CoresPerChip < 1 || c.ThreadsPerCore < 1:
		return fmt.Errorf("machine: topology must be positive, got %d×%d×%d",
			c.Chips, c.CoresPerChip, c.ThreadsPerCore)
	case c.FreqMult <= 0:
		return fmt.Errorf("machine: FreqMult must be positive, got %g", c.FreqMult)
	case c.Costs.TFp < 1 || c.Costs.TInt < 1:
		return fmt.Errorf("machine: op latencies must be ≥ 1 tick")
	case c.Costs.GShA < 0 || c.Costs.GShE < 0 || c.Costs.GMpA < 0 || c.Costs.GMpE < 0:
		return fmt.Errorf("machine: bandwidth factors must be non-negative")
	case c.CoreFreq != nil && len(c.CoreFreq) != c.NumCores():
		return fmt.Errorf("machine: CoreFreq has %d entries for %d cores", len(c.CoreFreq), c.NumCores())
	}
	for i, f := range c.CoreFreq {
		if f <= 0 {
			return fmt.Errorf("machine: CoreFreq[%d] = %g must be positive", i, f)
		}
	}
	return nil
}

// NumCores returns the total processor count.
func (c Config) NumCores() int { return c.Chips * c.CoresPerChip }

// NumThreads returns the total hardware thread count.
func (c Config) NumThreads() int { return c.NumCores() * c.ThreadsPerCore }

// Place decomposes a ThreadID into (chip, core-within-chip, thread-within-core).
func (c Config) Place(t ThreadID) (chip, core, thread int) {
	id := int(t)
	if id < 0 || id >= c.NumThreads() {
		panic(fmt.Sprintf("machine: thread id %d out of range [0,%d)", id, c.NumThreads()))
	}
	thread = id % c.ThreadsPerCore
	id /= c.ThreadsPerCore
	core = id % c.CoresPerChip
	chip = id / c.CoresPerChip
	return chip, core, thread
}

// CoreOf returns the global core index of a thread.
func (c Config) CoreOf(t ThreadID) int { return int(t) / c.ThreadsPerCore }

// ChipOf returns the chip index of a thread.
func (c Config) ChipOf(t ThreadID) int {
	return int(t) / (c.ThreadsPerCore * c.CoresPerChip)
}

// SameCore reports whether two threads are intra-processor in the
// paper's sense (hardware threads of the same core).
func (c Config) SameCore(a, b ThreadID) bool { return c.CoreOf(a) == c.CoreOf(b) }

// SameChip reports whether two threads share a chip.
func (c Config) SameChip(a, b ThreadID) bool { return c.ChipOf(a) == c.ChipOf(b) }

// AtFrequency returns a copy of the config running at multiplier mult of
// the nominal clock. Local-op latencies are scaled by 1/mult (rounded up
// to ≥ 1 tick) and per-op energies by mult², implementing the dynamic
// power law P ∝ f³ of §2.1. Communication latencies are left unscaled:
// they are dominated by wires and memory, not core clock.
func (c Config) AtFrequency(mult float64) Config {
	if mult <= 0 {
		panic("machine: frequency multiplier must be positive")
	}
	s := c
	s.FreqMult = c.FreqMult * mult
	scaleT := func(t sim.Time) sim.Time {
		v := sim.Time(float64(t)/mult + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	s.Costs.TFp = scaleT(c.Costs.TFp)
	s.Costs.TInt = scaleT(c.Costs.TInt)
	e2 := mult * mult
	s.Costs.WFp *= e2
	s.Costs.WInt *= e2
	s.Costs.WRead *= e2
	s.Costs.WWrite *= e2
	s.Costs.WSend *= e2
	s.Costs.WRecv *= e2
	s.Name = fmt.Sprintf("%s@%.2gx", c.Name, s.FreqMult)
	return s
}

// Describe renders the topology as ASCII, one chip per block — the
// textual stand-in for the paper's Figure 1.
func (c Config) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %q: %d chip(s) × %d core(s) × %d thread(s) = %d hardware threads\n",
		c.Name, c.Chips, c.CoresPerChip, c.ThreadsPerCore, c.NumThreads())
	for chip := 0; chip < c.Chips; chip++ {
		fmt.Fprintf(&b, "chip %d\n", chip)
		for core := 0; core < c.CoresPerChip; core++ {
			fmt.Fprintf(&b, "  core %d: threads", core)
			for th := 0; th < c.ThreadsPerCore; th++ {
				id := (chip*c.CoresPerChip+core)*c.ThreadsPerCore + th
				fmt.Fprintf(&b, " T%d", id)
			}
			b.WriteString("\n")
		}
		b.WriteString("  shared L2 / crossbar\n")
	}
	return b.String()
}

// Machine binds a Config to a simulation kernel and tracks which
// hardware threads are occupied by simulated processes.
type Machine struct {
	K   *sim.Kernel
	Cfg Config

	occupancy []int // processes bound per hardware thread
}

// New creates a machine on kernel k. It panics on an invalid config.
func New(k *sim.Kernel, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{K: k, Cfg: cfg, occupancy: make([]int, cfg.NumThreads())}
}

// Bind records that one more process occupies hardware thread t.
func (m *Machine) Bind(t ThreadID) { m.occupancy[t]++ }

// Release undoes a Bind.
func (m *Machine) Release(t ThreadID) {
	if m.occupancy[t] == 0 {
		panic(fmt.Sprintf("machine: release of unoccupied thread %d", t))
	}
	m.occupancy[t]--
}

// Occupancy returns the number of processes bound to thread t.
func (m *Machine) Occupancy(t ThreadID) int { return m.occupancy[t] }

// CoreOccupancy returns the total processes bound to threads of core.
func (m *Machine) CoreOccupancy(core int) int {
	n := 0
	for th := 0; th < m.Cfg.ThreadsPerCore; th++ {
		n += m.occupancy[core*m.Cfg.ThreadsPerCore+th]
	}
	return n
}

// FreeThreadOnCore returns an unoccupied hardware thread on the given
// core, or -1 if all are taken.
func (m *Machine) FreeThreadOnCore(core int) ThreadID {
	for th := 0; th < m.Cfg.ThreadsPerCore; th++ {
		id := ThreadID(core*m.Cfg.ThreadsPerCore + th)
		if m.occupancy[id] == 0 {
			return id
		}
	}
	return -1
}
