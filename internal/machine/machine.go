// Package machine models the CMP/CMT target machines of the STAMP paper:
// chips containing processors (cores), each processor running several
// hardware threads (Sun Niagara being the motivating example, Figure 1).
//
// A machine is pure configuration — topology plus the paper's cost
// parameter table (§3.1) and a dynamic power model (§2.1, P ∝ f³) — and
// a thread-occupancy map. All time charging happens in higher layers
// that consult the table.
package machine

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ThreadID identifies one hardware thread slot, numbered
// chip-major/core-major: id = (chip*CoresPerChip + core)*ThreadsPerCore + thread.
type ThreadID int

// Config describes a CMP/CMT machine.
type Config struct {
	Name           string
	Chips          int // number of CMP chips
	CoresPerChip   int // processors per chip
	ThreadsPerCore int // hardware threads per processor (CMT)

	// ChipsPerCluster groups chips into clusters, extending the flat
	// chips×cores×threads topology to the hierarchical machines of
	// "A Model for Communication in Clusters of Multi-core Machines":
	// message latency and bandwidth degrade in tiers (core, chip,
	// cluster, machine — see CostTable.LX/LC). 0 means one flat cluster,
	// preserving the original model exactly.
	ChipsPerCluster int

	// FreqMult is the clock multiplier relative to the nominal design
	// point. Local-op latencies scale as 1/FreqMult, per-op energies as
	// FreqMult², so power scales as FreqMult³ (§2.1).
	FreqMult float64

	// CoreFreq optionally gives each processor its own additional
	// clock multiplier (heterogeneous machines); nil means homogeneous.
	// Use WithCoreFreq to set it with validation.
	CoreFreq []float64

	Costs CostTable

	// PowerLimitPerCore is the power envelope of one processor in
	// energy units per tick (0 = unlimited). The paper's Jacobi example
	// sets this to 3(x+y)·w_int.
	PowerLimitPerCore float64
	// PowerLimitPerChip is the envelope of a whole chip (0 = unlimited).
	PowerLimitPerChip float64
}

// CostTable carries the STAMP model's machine parameters (§3.1).
// Times are in ticks; energies in abstract energy units; bandwidth
// factors g are ticks charged per communication operation.
type CostTable struct {
	// Local computation: ticks per floating-point / integer operation.
	TFp, TInt sim.Time

	// Shared-memory access latency upper bounds ℓ_a (intra-processor,
	// e.g. shared L1) and ℓ_e (inter-processor, e.g. shared L2).
	EllA, EllE sim.Time
	// Shared-memory bandwidth factors g_sh_a, g_sh_e.
	GShA, GShE float64

	// Message delays L_a (intra-processor) and L_e (inter-processor).
	LA, LE sim.Time
	// Message-passing bandwidth factors g_mp_a, g_mp_e.
	GMpA, GMpE float64

	// Hierarchical message tier for clustered machines (Config.
	// ChipsPerCluster): LX/GMpX are the chip-to-chip delay and
	// bandwidth factor within a cluster, LC/GMpC the cluster-to-cluster
	// ones. Zero values fall back down the hierarchy (LX→LE, LC→LX→LE,
	// g alike), so flat cost tables — and every golden produced with
	// them — are untouched.
	LX, LC     sim.Time
	GMpX, GMpC float64
	// GMpWord is the extra per-word cost of long messages (the LogGP
	// "big gap" G); 0 means message size is ignored.
	GMpWord float64

	// Per-operation energies: w_fp, w_int, w_dr, w_dw, w_ms, w_mr.
	// The paper assumes intra/inter energy differences are negligible,
	// so there is one value per operation class.
	WFp, WInt, WRead, WWrite, WSend, WRecv float64
}

// DefaultCosts returns the cost table used throughout the test suite and
// benchmarks. It satisfies the paper's §4 assumptions: w_fp = x·w_int and
// w_ms = w_mr = y·w_int with x, y ≥ 2, and the Jacobi lower bound L ≥ 5.
func DefaultCosts() CostTable {
	return CostTable{
		TFp: 1, TInt: 1,
		EllA: 1, EllE: 4,
		GShA: 1, GShE: 2,
		LA: 5, LE: 20,
		GMpA: 1, GMpE: 2,
		WFp: 2, WInt: 1, WRead: 2, WWrite: 2, WSend: 3, WRecv: 3,
	}
}

// EffLX returns the effective chip-to-chip message delay: LX, falling
// back to the flat inter-processor delay LE when unset.
func (c CostTable) EffLX() sim.Time {
	if c.LX > 0 {
		return c.LX
	}
	return c.LE
}

// EffLC returns the effective cluster-to-cluster message delay: LC,
// falling back to EffLX when unset.
func (c CostTable) EffLC() sim.Time {
	if c.LC > 0 {
		return c.LC
	}
	return c.EffLX()
}

// EffGMpX returns the effective chip-to-chip bandwidth factor.
func (c CostTable) EffGMpX() float64 {
	if c.GMpX > 0 {
		return c.GMpX
	}
	return c.GMpE
}

// EffGMpC returns the effective cluster-to-cluster bandwidth factor.
func (c CostTable) EffGMpC() float64 {
	if c.GMpC > 0 {
		return c.GMpC
	}
	return c.EffGMpX()
}

// Niagara returns the Sun Niagara configuration of Figure 1: one chip
// with 8 simple cores of 4 hardware threads each (32 threads total).
func Niagara() Config {
	return Config{
		Name:           "niagara",
		Chips:          1,
		CoresPerChip:   8,
		ThreadsPerCore: 4,
		FreqMult:       1,
		Costs:          DefaultCosts(),
	}
}

// Generic returns a small multi-chip CMP system: 4 chips × 4 cores × 2
// threads (32 threads total), for experiments that need inter-chip
// distribution.
func Generic() Config {
	return Config{
		Name:           "generic-cmp",
		Chips:          4,
		CoresPerChip:   4,
		ThreadsPerCore: 2,
		FreqMult:       1,
		Costs:          DefaultCosts(),
	}
}

// Cluster returns a hierarchical machine of clusters×chipsPerCluster
// chips (cores×threads each), with a tiered message cost table:
// crossing a chip boundary within a cluster costs LX=2·LE with a
// heavier bandwidth factor, crossing a cluster boundary costs LC=5·LE.
// The tier ratios follow the latency hierarchies measured in "A Model
// for Communication in Clusters of Multi-core Machines" (PAPERS.md);
// all values stay integral so counter folds are exact in float64.
func Cluster(clusters, chipsPerCluster, cores, threads int) Config {
	costs := DefaultCosts()
	costs.LX = 2 * costs.LE
	costs.GMpX = 3
	costs.LC = 5 * costs.LE
	costs.GMpC = 4
	return Config{
		Name:            fmt.Sprintf("cluster-%dx%dx%dx%d", clusters, chipsPerCluster, cores, threads),
		Chips:           clusters * chipsPerCluster,
		CoresPerChip:    cores,
		ThreadsPerCore:  threads,
		ChipsPerCluster: chipsPerCluster,
		FreqMult:        1,
		Costs:           costs,
	}
}

// SingleCore returns a 1×1×1 machine for sequential baselines.
func SingleCore() Config {
	return Config{
		Name:           "single-core",
		Chips:          1,
		CoresPerChip:   1,
		ThreadsPerCore: 1,
		FreqMult:       1,
		Costs:          DefaultCosts(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Chips < 1 || c.CoresPerChip < 1 || c.ThreadsPerCore < 1:
		return fmt.Errorf("machine: topology must be positive, got %d×%d×%d",
			c.Chips, c.CoresPerChip, c.ThreadsPerCore)
	case c.FreqMult <= 0:
		return fmt.Errorf("machine: FreqMult must be positive, got %g", c.FreqMult)
	case c.Costs.TFp < 1 || c.Costs.TInt < 1:
		return fmt.Errorf("machine: op latencies must be ≥ 1 tick")
	case c.Costs.GShA < 0 || c.Costs.GShE < 0 || c.Costs.GMpA < 0 || c.Costs.GMpE < 0:
		return fmt.Errorf("machine: bandwidth factors must be non-negative")
	case c.CoreFreq != nil && len(c.CoreFreq) != c.NumCores():
		return fmt.Errorf("machine: CoreFreq has %d entries for %d cores", len(c.CoreFreq), c.NumCores())
	case c.ChipsPerCluster < 0:
		return fmt.Errorf("machine: ChipsPerCluster must be non-negative, got %d", c.ChipsPerCluster)
	case c.Costs.LX < 0 || c.Costs.LC < 0:
		return fmt.Errorf("machine: tiered message delays must be non-negative")
	case c.Costs.GMpX < 0 || c.Costs.GMpC < 0:
		return fmt.Errorf("machine: tiered bandwidth factors must be non-negative")
	}
	for i, f := range c.CoreFreq {
		if f <= 0 {
			return fmt.Errorf("machine: CoreFreq[%d] = %g must be positive", i, f)
		}
	}
	return nil
}

// NumCores returns the total processor count.
func (c Config) NumCores() int { return c.Chips * c.CoresPerChip }

// NumThreads returns the total hardware thread count.
func (c Config) NumThreads() int { return c.NumCores() * c.ThreadsPerCore }

// Place decomposes a ThreadID into (chip, core-within-chip, thread-within-core).
func (c Config) Place(t ThreadID) (chip, core, thread int) {
	id := int(t)
	if id < 0 || id >= c.NumThreads() {
		panic(fmt.Sprintf("machine: thread id %d out of range [0,%d)", id, c.NumThreads()))
	}
	thread = id % c.ThreadsPerCore
	id /= c.ThreadsPerCore
	core = id % c.CoresPerChip
	chip = id / c.CoresPerChip
	return chip, core, thread
}

// CoreOf returns the global core index of a thread.
func (c Config) CoreOf(t ThreadID) int { return int(t) / c.ThreadsPerCore }

// ChipOf returns the chip index of a thread.
func (c Config) ChipOf(t ThreadID) int {
	return int(t) / (c.ThreadsPerCore * c.CoresPerChip)
}

// SameCore reports whether two threads are intra-processor in the
// paper's sense (hardware threads of the same core).
func (c Config) SameCore(a, b ThreadID) bool { return c.CoreOf(a) == c.CoreOf(b) }

// SameChip reports whether two threads share a chip.
func (c Config) SameChip(a, b ThreadID) bool { return c.ChipOf(a) == c.ChipOf(b) }

// NumClusters returns the cluster count (1 for flat machines).
func (c Config) NumClusters() int {
	if c.ChipsPerCluster <= 0 || c.ChipsPerCluster >= c.Chips {
		return 1
	}
	return (c.Chips + c.ChipsPerCluster - 1) / c.ChipsPerCluster
}

// ClusterOf returns the cluster index of a thread (0 on flat machines).
func (c Config) ClusterOf(t ThreadID) int {
	if c.ChipsPerCluster <= 0 {
		return 0
	}
	return c.ChipOf(t) / c.ChipsPerCluster
}

// SameCluster reports whether two threads share a cluster.
func (c Config) SameCluster(a, b ThreadID) bool { return c.ClusterOf(a) == c.ClusterOf(b) }

// MsgLink returns the message delay and bandwidth factor between two
// threads under the hierarchical tier: same core → (LA, GMpA), same
// chip → (LE, GMpE), same cluster → (LX, GMpX), else → (LC, GMpC),
// with unset upper tiers falling back down the hierarchy. intra
// reports the paper's intra-processor case (same core). On flat
// machines this reproduces the original two-tier costs exactly.
func (c Config) MsgLink(a, b ThreadID) (delay sim.Time, g float64, intra bool) {
	switch {
	case c.SameCore(a, b):
		return c.Costs.LA, c.Costs.GMpA, true
	case c.SameChip(a, b):
		return c.Costs.LE, c.Costs.GMpE, false
	case c.SameCluster(a, b):
		return c.Costs.EffLX(), c.Costs.EffGMpX(), false
	default:
		return c.Costs.EffLC(), c.Costs.EffGMpC(), false
	}
}

// InterChipLookahead returns the minimum virtual-time distance between
// a cross-chip send and any effect on the destination chip — the
// conservative lookahead window that makes per-chip kernel shards safe
// (see sim.ShardGroup). It is the smallest cross-chip tier delay.
func (c Config) InterChipLookahead() sim.Time {
	l := c.Costs.EffLX()
	if c.NumClusters() > 1 {
		if lc := c.Costs.EffLC(); lc < l {
			l = lc
		}
	}
	return l
}

// AtFrequency returns a copy of the config running at multiplier mult of
// the nominal clock. Local-op latencies are scaled by 1/mult (rounded up
// to ≥ 1 tick) and per-op energies by mult², implementing the dynamic
// power law P ∝ f³ of §2.1. Communication latencies are left unscaled:
// they are dominated by wires and memory, not core clock.
func (c Config) AtFrequency(mult float64) Config {
	if mult <= 0 {
		panic("machine: frequency multiplier must be positive")
	}
	s := c
	s.FreqMult = c.FreqMult * mult
	scaleT := func(t sim.Time) sim.Time {
		v := sim.Time(float64(t)/mult + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	s.Costs.TFp = scaleT(c.Costs.TFp)
	s.Costs.TInt = scaleT(c.Costs.TInt)
	e2 := mult * mult
	s.Costs.WFp *= e2
	s.Costs.WInt *= e2
	s.Costs.WRead *= e2
	s.Costs.WWrite *= e2
	s.Costs.WSend *= e2
	s.Costs.WRecv *= e2
	s.Name = fmt.Sprintf("%s@%.2gx", c.Name, s.FreqMult)
	return s
}

// Describe renders the topology as ASCII, one chip per block — the
// textual stand-in for the paper's Figure 1.
func (c Config) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %q: %d chip(s) × %d core(s) × %d thread(s) = %d hardware threads\n",
		c.Name, c.Chips, c.CoresPerChip, c.ThreadsPerCore, c.NumThreads())
	if c.NumClusters() > 1 {
		fmt.Fprintf(&b, "%d cluster(s) of %d chip(s); message tiers L=%d/%d/%d/%d\n",
			c.NumClusters(), c.ChipsPerCluster,
			c.Costs.LA, c.Costs.LE, c.Costs.EffLX(), c.Costs.EffLC())
	}
	for chip := 0; chip < c.Chips; chip++ {
		if c.NumClusters() > 1 && chip%c.ChipsPerCluster == 0 {
			fmt.Fprintf(&b, "cluster %d\n", chip/c.ChipsPerCluster)
		}
		fmt.Fprintf(&b, "chip %d\n", chip)
		for core := 0; core < c.CoresPerChip; core++ {
			fmt.Fprintf(&b, "  core %d: threads", core)
			for th := 0; th < c.ThreadsPerCore; th++ {
				id := (chip*c.CoresPerChip+core)*c.ThreadsPerCore + th
				fmt.Fprintf(&b, " T%d", id)
			}
			b.WriteString("\n")
		}
		b.WriteString("  shared L2 / crossbar\n")
	}
	return b.String()
}

// Machine binds a Config to a simulation kernel and tracks which
// hardware threads are occupied by simulated processes. On a sharded
// machine (NewSharded) K is shard 0 — the coordinator kernel that
// hosts anything without a chip affinity — and each chip's events run
// on KernelFor(t).
type Machine struct {
	K   *sim.Kernel
	Cfg Config

	occupancy []int // processes bound per hardware thread

	sg      *sim.ShardGroup // nil on unsharded machines
	shardOf []int           // chip → shard index (sharded only)
}

// New creates a machine on kernel k. It panics on an invalid config.
func New(k *sim.Kernel, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{K: k, Cfg: cfg, occupancy: make([]int, cfg.NumThreads())}
}

// NewSharded creates a machine whose chips are partitioned over the
// shard group's kernels: chip c maps to shard c·S/Chips, so chips are
// spread contiguously and (with ChipsPerCluster a multiple of the
// chips-per-shard quotient) cluster boundaries align with shard
// boundaries. It panics if the group has more shards than chips — a
// shard with no chip could never receive work.
func NewSharded(sg *sim.ShardGroup, cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := sg.NumShards()
	if s > cfg.Chips {
		panic(fmt.Sprintf("machine: %d shards for %d chips; shards must not exceed chips", s, cfg.Chips))
	}
	shardOf := make([]int, cfg.Chips)
	for c := range shardOf {
		shardOf[c] = c * s / cfg.Chips
	}
	return &Machine{
		K:         sg.Shard(0),
		Cfg:       cfg,
		occupancy: make([]int, cfg.NumThreads()),
		sg:        sg,
		shardOf:   shardOf,
	}
}

// Sharded reports whether the machine partitions chips over a shard
// group.
func (m *Machine) Sharded() bool { return m.sg != nil }

// Shards returns the shard group, or nil for unsharded machines.
func (m *Machine) Shards() *sim.ShardGroup { return m.sg }

// ShardOfThread returns the shard index owning thread t (0 when
// unsharded).
func (m *Machine) ShardOfThread(t ThreadID) int {
	if m.sg == nil {
		return 0
	}
	return m.shardOf[m.Cfg.ChipOf(t)]
}

// KernelFor returns the kernel that dispatches events for thread t —
// the shard owning t's chip, or the machine's single kernel when
// unsharded.
func (m *Machine) KernelFor(t ThreadID) *sim.Kernel {
	if m.sg == nil {
		return m.K
	}
	return m.sg.Shard(m.shardOf[m.Cfg.ChipOf(t)])
}

// Bind records that one more process occupies hardware thread t.
func (m *Machine) Bind(t ThreadID) { m.occupancy[t]++ }

// Release undoes a Bind.
func (m *Machine) Release(t ThreadID) {
	if m.occupancy[t] == 0 {
		panic(fmt.Sprintf("machine: release of unoccupied thread %d", t))
	}
	m.occupancy[t]--
}

// Occupancy returns the number of processes bound to thread t.
func (m *Machine) Occupancy(t ThreadID) int { return m.occupancy[t] }

// CoreOccupancy returns the total processes bound to threads of core.
func (m *Machine) CoreOccupancy(core int) int {
	n := 0
	for th := 0; th < m.Cfg.ThreadsPerCore; th++ {
		n += m.occupancy[core*m.Cfg.ThreadsPerCore+th]
	}
	return n
}

// FreeThreadOnCore returns an unoccupied hardware thread on the given
// core, or -1 if all are taken.
func (m *Machine) FreeThreadOnCore(core int) ThreadID {
	for th := 0; th < m.Cfg.ThreadsPerCore; th++ {
		id := ThreadID(core*m.Cfg.ThreadsPerCore + th)
		if m.occupancy[id] == 0 {
			return id
		}
	}
	return -1
}
