package relmodels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBSPSuperstep(t *testing.T) {
	m := BSP{P: 8, G: 2, L: 10}
	// w + g·h + l = 100 + 2·7 + 10
	if got := m.Superstep(100, 7); !approx(got, 124) {
		t.Fatalf("superstep %g", got)
	}
}

func TestBSPSteps(t *testing.T) {
	m := BSP{P: 4, G: 1, L: 5}
	got := m.Steps([]float64{10, 20}, []float64{3, 0})
	if !approx(got, 10+3+5+20+0+5) {
		t.Fatalf("steps %g", got)
	}
}

func TestBSPStepsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BSP{}.Steps([]float64{1}, nil)
}

func TestLogPSendTime(t *testing.T) {
	m := LogP{L: 10, O: 2, G: 3, P: 4}
	if m.SendTime(0) != 0 {
		t.Fatal("empty send not free")
	}
	// o + (n−1)·max(g,o) = 2 + 4·3
	if got := m.SendTime(5); !approx(got, 14) {
		t.Fatalf("send time %g", got)
	}
	// overhead-bound when o > g
	m2 := LogP{L: 10, O: 5, G: 3}
	if got := m2.SendTime(3); !approx(got, 15) {
		t.Fatalf("overhead-bound send %g", got)
	}
}

func TestLogPDelivery(t *testing.T) {
	m := LogP{L: 10, O: 2, G: 3}
	// send(1)=2, +L+o = 14
	if got := m.Delivery(1); !approx(got, 14) {
		t.Fatalf("delivery %g", got)
	}
}

func TestLogPRoundMonotoneInMessages(t *testing.T) {
	m := LogP{L: 10, O: 2, G: 3}
	f := func(n8 uint8) bool {
		n := int(n8 % 60)
		return m.Round(50, n+1) > m.Round(50, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogGPLongMessages(t *testing.T) {
	m := LogGP{LogP: LogP{L: 10, O: 2, G: 3}, GBig: 0.5}
	// o + (k−1)·Gbig = 2 + 99·0.5
	if got := m.LongSend(100); !approx(got, 51.5) {
		t.Fatalf("long send %g", got)
	}
	if got := m.LongDelivery(100); !approx(got, 51.5+10+2) {
		t.Fatalf("long delivery %g", got)
	}
	if m.LongSend(0) != 0 {
		t.Fatal("empty long send not free")
	}
}

func TestQSMPhaseTakesMax(t *testing.T) {
	m := QSM{P: 8, G: 2}
	if got := m.Phase(100, 10, 5); !approx(got, 100) {
		t.Fatalf("compute-bound phase %g", got)
	}
	if got := m.Phase(10, 100, 5); !approx(got, 200) {
		t.Fatalf("memory-bound phase %g", got)
	}
	if got := m.Phase(10, 1, 500); !approx(got, 500) {
		t.Fatalf("contention-bound phase %g", got)
	}
}

func TestQSMPhases(t *testing.T) {
	m := QSM{P: 2, G: 1}
	got := m.Phases([]float64{5, 10}, []float64{1, 20}, []float64{0, 0})
	if !approx(got, 5+20) {
		t.Fatalf("phases %g", got)
	}
}

func TestCapabilitiesOnlySTAMPModelsPower(t *testing.T) {
	caps := Capabilities()
	if len(caps) != 5 {
		t.Fatalf("capability rows %d", len(caps))
	}
	for _, c := range caps {
		if !c.Time {
			t.Errorf("%s does not model time?", c.Model)
		}
		if c.Model != "STAMP" && (c.Energy || c.Power || c.Transactions || c.Heterogeneous) {
			t.Errorf("%s claims STAMP-only capabilities", c.Model)
		}
	}
	last := caps[len(caps)-1]
	if last.Model != "STAMP" || !last.Energy || !last.Power || !last.Transactions {
		t.Fatalf("STAMP row wrong: %+v", last)
	}
}

func TestJacobiBSPTracksSTAMPShape(t *testing.T) {
	// With consistently mapped constants the BSP and STAMP predictions
	// of one Jacobi iteration must agree on the asymptotic shape
	// (linear in n with the same dominant coefficient: 2n from compute
	// plus g·(n−1) or 2g·(n−1) message terms).
	for _, n := range []int{16, 64, 256} {
		st := cost.Jacobi{N: n, L: 5, G: 1, X: 2, Y: 3, WInt: 1}.TSRound()
		// BSP charges each h-relation once (g·h covers both directions
		// of a balanced exchange in Valiant's accounting); STAMP
		// charges sends and receives separately, so map g_BSP = 2g.
		bsp := JacobiBSP(n, 2, 5)
		if rel := math.Abs(st-bsp) / st; rel > 0.05 {
			t.Fatalf("n=%d: STAMP %.0f vs BSP %.0f (rel %.3f)", n, st, bsp, rel)
		}
	}
}

func TestJacobiLogPDominatedByGapAtScale(t *testing.T) {
	small := JacobiLogP(8, 5, 1, 1)
	big := JacobiLogP(512, 5, 1, 1)
	if big <= small {
		t.Fatal("LogP Jacobi cost not growing")
	}
	// At large n the per-message terms dominate: cost ≈ 2n + 2n·gap.
	if rel := math.Abs(big-4*512.0) / big; rel > 0.05 {
		t.Fatalf("LogP asymptote off: %g", big)
	}
}

func TestAPSPQSMRegimes(t *testing.T) {
	// Small p: compute-bound (2v² dominates g·(v²+v) when g=1? no:
	// g(v²+v) > 2v² is false for g=1; compute 2v² wins).
	if got := APSPQSM(16, 4, 1); !approx(got, 2*16*16) {
		t.Fatalf("compute-bound %g", got)
	}
	// Large g: memory-bound.
	if got := APSPQSM(16, 4, 4); !approx(got, 4*(16*16+16)) {
		t.Fatalf("memory-bound %g", got)
	}
}
