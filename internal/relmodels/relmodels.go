// Package relmodels implements first-order cost calculators for the
// parallel computation models the paper positions STAMP against (§2.2):
// Valiant's BSP, Culler et al.'s LogP (with the LogGP long-message
// extension), and the Queued Shared Memory model of Gibbons, Matias and
// Ramachandran. They allow the comparison experiments to evaluate the
// same algorithm under every model's cost formula and to make the
// paper's positioning concrete: all three predict *time only* — none
// models energy, power, transactions or heterogeneity, which is the gap
// STAMP fills.
package relmodels

import "math"

// BSP is the Bulk Synchronous Parallel model: computation proceeds in
// supersteps; each superstep costs w + g·h + l, where w is the maximum
// local work, h the maximum number of messages sent or received by one
// processor (an h-relation), g the per-message bandwidth cost and l the
// barrier synchronization latency.
type BSP struct {
	P int     // processors
	G float64 // bandwidth cost per message (h-relation gradient)
	L float64 // barrier latency per superstep
}

// Superstep returns the cost w + g·h + l of one superstep.
func (m BSP) Superstep(w float64, h float64) float64 {
	return w + m.G*h + m.L
}

// Steps returns the cost of a sequence of supersteps.
func (m BSP) Steps(ws, hs []float64) float64 {
	if len(ws) != len(hs) {
		panic("relmodels: ws and hs must align")
	}
	total := 0.0
	for i := range ws {
		total += m.Superstep(ws[i], hs[i])
	}
	return total
}

// LogP is the LogP model: L the network latency, O the per-message
// processor overhead (send or receive), G the gap between consecutive
// messages (reciprocal bandwidth), P the processor count.
type LogP struct {
	L float64 // latency
	O float64 // overhead per message end
	G float64 // gap between messages
	P int
}

// gapOrOverhead is the effective per-message occupancy.
func (m LogP) gapOrOverhead() float64 { return math.Max(m.G, m.O) }

// SendTime returns the processor time consumed injecting n messages.
func (m LogP) SendTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.O + float64(n-1)*m.gapOrOverhead()
}

// Delivery returns the time from send start to availability at the
// receiver for the last of n pipelined messages (sender occupancy +
// wire latency + receive overhead).
func (m LogP) Delivery(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.SendTime(n) + m.L + m.O
}

// Round returns the cost of a compute-then-exchange round in which
// every processor computes w, sends n messages and receives n.
func (m LogP) Round(w float64, n int) float64 {
	// Compute, inject n, last message lands L+o after its injection;
	// receiving n messages costs n·max(g,o) of processor time, which
	// overlaps arrival for all but the last.
	return w + m.SendTime(n) + m.L + m.O + float64(n-1)*m.gapOrOverhead()
}

// LogGP extends LogP with a per-byte gap for long messages.
type LogGP struct {
	LogP
	GBig float64 // gap per byte of a long message
}

// LongSend returns the injection time of one k-byte message.
func (m LogGP) LongSend(k int) float64 {
	if k <= 0 {
		return 0
	}
	return m.O + float64(k-1)*m.GBig
}

// LongDelivery returns send-to-availability time of one k-byte message.
func (m LogGP) LongDelivery(k int) float64 {
	return m.LongSend(k) + m.L + m.O
}

// QSM is the Queued Shared Memory model: phases of local computation
// plus shared-memory reads/writes; the cost of a phase is
// max(m_op, g·m_rw, κ) where m_op is the maximum local ops of any
// processor, m_rw its shared accesses, g the bandwidth gap, and κ the
// maximum contention at any one location (accesses queue).
type QSM struct {
	P int
	G float64 // gap per shared access
}

// Phase returns max(mop, g·mrw, κ).
func (m QSM) Phase(mop, mrw, kappa float64) float64 {
	return math.Max(mop, math.Max(m.G*mrw, kappa))
}

// Phases sums a sequence of phases.
func (m QSM) Phases(mop, mrw, kappa []float64) float64 {
	if len(mop) != len(mrw) || len(mop) != len(kappa) {
		panic("relmodels: phase slices must align")
	}
	total := 0.0
	for i := range mop {
		total += m.Phase(mop[i], mrw[i], kappa[i])
	}
	return total
}

// Capability flags: what each model can express. STAMP's row is what
// the paper adds (§1: "Power must be a critical part of the model.
// Moreover, the model must be general enough to embrace ... adaptive
// and heterogeneous computations and transactional systems").
type Capability struct {
	Model         string
	Time          bool
	Energy        bool
	Power         bool
	Transactions  bool
	Asynchrony    bool // fully asynchronous execution (no forced bulk-synchrony)
	Heterogeneous bool
}

// Capabilities returns the comparison matrix of §2.2 models plus STAMP.
func Capabilities() []Capability {
	return []Capability{
		{Model: "PRAM", Time: true},
		{Model: "BSP", Time: true},
		{Model: "LogP", Time: true, Asynchrony: true},
		{Model: "QSM", Time: true},
		{Model: "STAMP", Time: true, Energy: true, Power: true,
			Transactions: true, Asynchrony: true, Heterogeneous: true},
	}
}

// JacobiBSP maps the paper's distributed Jacobi iteration onto BSP: one
// superstep per iteration with w = 2n local ops and h = n−1 messages
// each way (an (n−1)-relation).
func JacobiBSP(n int, g, l float64) float64 {
	m := BSP{P: n, G: g, L: l}
	return m.Superstep(float64(2*n), float64(n-1))
}

// JacobiLogP maps one Jacobi iteration onto LogP: w = 2n local ops,
// n−1 messages exchanged per processor.
func JacobiLogP(n int, l, o, g float64) float64 {
	m := LogP{L: l, O: o, G: g, P: n}
	return m.Round(float64(2*n), n-1)
}

// APSPQSM maps one APSP round onto QSM: each processor performs 2v²
// local ops and v²+v shared accesses (read the matrix, write its row);
// contention κ = p accesses queue at a hot word in the worst case.
func APSPQSM(v, p int, g float64) float64 {
	m := QSM{P: p, G: g}
	return m.Phase(float64(2*v*v), float64(v*v+v), float64(p))
}
