package sched

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
)

func TestCapPerCore(t *testing.T) {
	cfg := machine.Niagara() // 4 threads/core
	if got := CapPerCore(cfg, 5, 15); got != 3 {
		t.Fatalf("cap = %d, want 3 (envelope 15 / power 5)", got)
	}
	if got := CapPerCore(cfg, 5, 100); got != 4 {
		t.Fatalf("cap = %d, want 4 (hardware bound)", got)
	}
	if got := CapPerCore(cfg, 5, 0); got != 4 {
		t.Fatalf("cap = %d, want 4 (no envelope)", got)
	}
	if got := CapPerCore(cfg, 5, 4); got != 0 {
		t.Fatalf("cap = %d, want 0 (one proc too hot)", got)
	}
}

func TestPaperJacobiDecision(t *testing.T) {
	// §4: power bound (x+y)w_int = 5, envelope 3(x+y)w_int = 15 ⇒
	// at most 3 of a Niagara core's 4 threads may run Jacobi.
	j := cost.Jacobi{N: 64, X: 2, Y: 3, WInt: 1}
	cfg := machine.Niagara()
	job := Job{Name: "jacobi", N: 4, PowerPerProc: j.PowerBound(), Dist: core.IntraProc}
	d := Allocate(cfg, job, j.PaperEnvelope())
	if !d.Feasible {
		t.Fatalf("infeasible: %s", d.Reason)
	}
	if d.ThreadsPerCoreCap != 3 {
		t.Fatalf("cap = %d, want 3 (the paper's decision)", d.ThreadsPerCoreCap)
	}
	if d.CoresUsed != 2 {
		t.Fatalf("4 procs with cap 3 should use 2 cores, used %d", d.CoresUsed)
	}
	if err := Verify(cfg, d, j.PaperEnvelope()); err != nil {
		t.Fatal(err)
	}
}

func TestIntraPacksMinimumCores(t *testing.T) {
	cfg := machine.Niagara()
	d := Allocate(cfg, Job{N: 7, PowerPerProc: 1, Dist: core.IntraProc}, 0)
	if !d.Feasible || d.CoresUsed != 2 {
		t.Fatalf("7 procs, 4 threads/core: cores used = %d, want 2 (%s)", d.CoresUsed, d.Reason)
	}
	// First four members share core 0.
	for i := 0; i < 4; i++ {
		if cfg.CoreOf(d.Placement[i]) != 0 {
			t.Fatalf("member %d on core %d", i, cfg.CoreOf(d.Placement[i]))
		}
	}
}

func TestInterSpreadsAllCores(t *testing.T) {
	cfg := machine.Niagara()
	d := Allocate(cfg, Job{N: 8, PowerPerProc: 1, Dist: core.InterProc}, 0)
	if !d.Feasible || d.CoresUsed != 8 {
		t.Fatalf("cores used = %d, want 8", d.CoresUsed)
	}
}

func TestInfeasibleWhenTooHot(t *testing.T) {
	cfg := machine.Niagara()
	d := Allocate(cfg, Job{N: 1, PowerPerProc: 20, Dist: core.IntraProc}, 10)
	if d.Feasible {
		t.Fatal("over-hot process placed anyway")
	}
	if d.Reason == "" {
		t.Fatal("no reason given")
	}
}

func TestInfeasibleWhenMachineFull(t *testing.T) {
	cfg := machine.Niagara() // 32 threads
	d := Allocate(cfg, Job{N: 33, PowerPerProc: 0.1, Dist: core.InterProc}, 0)
	if d.Feasible {
		t.Fatal("oversized job placed")
	}
}

func TestEnvelopeSweepMatchesCostModel(t *testing.T) {
	// Sweeping the envelope, the allocator's per-core cap must equal
	// the cost model's MaxThreadsUnderEnvelope (up to the hardware
	// bound) — the closed loop between model and allocator.
	j := cost.Jacobi{N: 32, X: 2, Y: 3, WInt: 1}
	cfg := machine.Niagara()
	for mult := 1; mult <= 8; mult++ {
		env := float64(mult) * (j.X + j.Y) * j.WInt
		want := j.MaxThreadsUnderEnvelope(env)
		if want > cfg.ThreadsPerCore {
			want = cfg.ThreadsPerCore
		}
		got := CapPerCore(cfg, j.PowerBound(), env)
		if got != want {
			t.Fatalf("envelope %g: cap %d, model %d", env, got, want)
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	cfg := machine.Niagara()
	bad := Decision{
		Job:      Job{N: 2, PowerPerProc: 10},
		Feasible: true,
		// both on core 0 → 20 > envelope 15
		Placement: core.Placement{0, 1},
	}
	if err := Verify(cfg, bad, 15); err == nil {
		t.Fatal("verify missed envelope violation")
	}
	dup := Decision{
		Job:       Job{N: 2, PowerPerProc: 1},
		Feasible:  true,
		Placement: core.Placement{3, 3},
	}
	if err := Verify(cfg, dup, 0); err == nil {
		t.Fatal("verify missed duplicate thread assignment")
	}
}

func TestChoosePrefersIntraWhenItFits(t *testing.T) {
	cfg := machine.Niagara()
	d := Choose(cfg, Job{N: 3, PowerPerProc: 5}, 15)
	if !d.Feasible || d.Job.Dist != core.IntraProc || d.CoresUsed != 1 {
		t.Fatalf("choose: %+v (%s)", d.Job.Dist, d.Reason)
	}
}

func TestChooseFallsBackToInter(t *testing.T) {
	cfg := machine.Niagara()
	// 4 procs at power 5 under envelope 15: cap 3 → intra needs 2
	// cores → prefer inter spreading.
	d := Choose(cfg, Job{N: 4, PowerPerProc: 5}, 15)
	if !d.Feasible || d.Job.Dist != core.InterProc {
		t.Fatalf("choose picked %v (%s)", d.Job.Dist, d.Reason)
	}
	if d.CoresUsed != 4 {
		t.Fatalf("inter fallback used %d cores", d.CoresUsed)
	}
}

func TestChooseInfeasibleReported(t *testing.T) {
	cfg := machine.SingleCore()
	d := Choose(cfg, Job{N: 2, PowerPerProc: 100}, 1)
	if d.Feasible {
		t.Fatal("impossible job reported feasible")
	}
}

func TestAllocationAlwaysVerifiesQuick(t *testing.T) {
	cfg := machine.Generic()
	f := func(n8, p8, e8 uint8, inter bool) bool {
		n := 1 + int(n8)%40
		p := 0.5 + float64(p8%40)/4
		env := float64(e8%64) / 2 // may be 0 = unlimited
		dist := core.IntraProc
		if inter {
			dist = core.InterProc
		}
		d := Allocate(cfg, Job{N: n, PowerPerProc: p, Dist: dist}, env)
		if !d.Feasible {
			return true
		}
		if len(d.Placement) != n {
			return false
		}
		return Verify(cfg, d, env) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyJob(t *testing.T) {
	d := Allocate(machine.Niagara(), Job{N: 0}, 0)
	if d.Feasible {
		t.Fatal("empty job feasible")
	}
}

func TestHeterogeneousAllocationPrefersFastCores(t *testing.T) {
	// big.LITTLE: cores 0-1 fast, 2-7 slow — but scramble with
	// WithCoreFreq so the fastest cores are NOT the lowest-numbered.
	freq := []float64{0.5, 0.5, 2, 2, 1, 1, 1, 1}
	cfg := machine.Niagara().WithCoreFreq(freq)
	d := Allocate(cfg, Job{N: 6, PowerPerProc: 1, Dist: core.IntraProc}, 0)
	if !d.Feasible {
		t.Fatalf("infeasible: %s", d.Reason)
	}
	// First four processes pack the fastest core (2), next two core 3.
	for i := 0; i < 4; i++ {
		if got := cfg.CoreOf(d.Placement[i]); got != 2 {
			t.Fatalf("member %d on core %d, want fastest core 2", i, got)
		}
	}
	for i := 4; i < 6; i++ {
		if got := cfg.CoreOf(d.Placement[i]); got != 3 {
			t.Fatalf("member %d on core %d, want core 3", i, got)
		}
	}
	if err := Verify(cfg, d, 0); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousInterSpreadStartsFast(t *testing.T) {
	freq := []float64{1, 1, 1, 1, 1, 1, 4, 4}
	cfg := machine.Niagara().WithCoreFreq(freq)
	d := Allocate(cfg, Job{N: 2, PowerPerProc: 1, Dist: core.InterProc}, 0)
	if !d.Feasible {
		t.Fatal(d.Reason)
	}
	c0, c1 := cfg.CoreOf(d.Placement[0]), cfg.CoreOf(d.Placement[1])
	if c0 != 6 || c1 != 7 {
		t.Fatalf("spread went to cores %d,%d; want the fast 6,7", c0, c1)
	}
}

func TestAllocateExcludingAvoidsDownCores(t *testing.T) {
	cfg := machine.Niagara()
	down := map[int]bool{0: true, 2: true}
	for _, dist := range []core.Dist{core.IntraProc, core.InterProc} {
		d := AllocateExcluding(cfg, Job{N: 8, PowerPerProc: 1, Dist: dist}, 0, down)
		if !d.Feasible {
			t.Fatalf("dist %v infeasible: %s", dist, d.Reason)
		}
		for i, th := range d.Placement {
			if c := cfg.CoreOf(th); down[c] {
				t.Fatalf("dist %v member %d placed on down core %d", dist, i, c)
			}
		}
		if err := Verify(cfg, d, 0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllocateExcludingInfeasibleWhenSurvivorsShort(t *testing.T) {
	cfg := machine.Niagara() // 8 cores × 4 threads
	down := map[int]bool{}
	for c := 0; c < 7; c++ {
		down[c] = true
	}
	// One surviving core under a cap of 3 offers 3 slots; 4 don't fit.
	d := AllocateExcluding(cfg, Job{N: 4, PowerPerProc: 5, Dist: core.IntraProc}, 15, down)
	if d.Feasible {
		t.Fatal("placed a job larger than the surviving capacity")
	}
	if d.Reason == "" {
		t.Fatal("no reason given")
	}
}

func TestAllocateExcludingAllCoresDown(t *testing.T) {
	cfg := machine.SingleCore()
	d := AllocateExcluding(cfg, Job{N: 1, PowerPerProc: 1, Dist: core.IntraProc}, 0,
		map[int]bool{0: true})
	if d.Feasible {
		t.Fatal("placed a job on a fully-failed machine")
	}
}

func TestAllocateExcludingNilMatchesAllocate(t *testing.T) {
	// With nothing excluded, AllocateExcluding must be byte-identical to
	// Allocate (the E9/E11 goldens pin Allocate's reasons and layouts).
	freq := []float64{0.5, 0.5, 2, 2, 1, 1, 1, 1}
	for _, cfg := range []machine.Config{machine.Niagara(), machine.Generic(), machine.Niagara().WithCoreFreq(freq)} {
		for _, dist := range []core.Dist{core.IntraProc, core.InterProc} {
			for _, n := range []int{1, 5, 8, 33} {
				job := Job{Name: "j", N: n, PowerPerProc: 5, Dist: dist}
				a := Allocate(cfg, job, 15)
				b := AllocateExcluding(cfg, job, 15, nil)
				c := AllocateExcluding(cfg, job, 15, map[int]bool{})
				if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
					t.Fatalf("divergence for n=%d dist=%v:\n%+v\n%+v\n%+v", n, dist, a, b, c)
				}
			}
		}
	}
}

func TestAllocateExcludingHeterogeneousPrefersFastSurvivors(t *testing.T) {
	// Fastest core (2) is down: packing must start at the next-fastest
	// survivor (3), never touching 2.
	freq := []float64{0.5, 0.5, 2, 2, 1, 1, 1, 1}
	cfg := machine.Niagara().WithCoreFreq(freq)
	d := AllocateExcluding(cfg, Job{N: 4, PowerPerProc: 1, Dist: core.IntraProc}, 0,
		map[int]bool{2: true})
	if !d.Feasible {
		t.Fatal(d.Reason)
	}
	for i := 0; i < 4; i++ {
		if got := cfg.CoreOf(d.Placement[i]); got != 3 {
			t.Fatalf("member %d on core %d, want surviving fast core 3", i, got)
		}
	}
}

func TestHomogeneousLayoutUnchangedByOrdering(t *testing.T) {
	// Stable sort on equal speeds keeps the canonical 0,1,2,… layout.
	cfg := machine.Niagara()
	d := Allocate(cfg, Job{N: 5, PowerPerProc: 1, Dist: core.IntraProc}, 0)
	for i := 0; i < 4; i++ {
		if cfg.CoreOf(d.Placement[i]) != 0 {
			t.Fatalf("member %d not on core 0", i)
		}
	}
	if cfg.CoreOf(d.Placement[4]) != 1 {
		t.Fatal("overflow member not on core 1")
	}
}

// TestInterConfinesToOneClusterWhenItFits pins the hierarchical tier
// in placement: on a clustered machine an inter_proc job that fits one
// cluster's cores is dealt entirely inside it (never paying L_c), and
// a bigger job spills to the next cluster only after the first is
// full. Flat machines keep the global round-robin unchanged.
func TestInterConfinesToOneClusterWhenItFits(t *testing.T) {
	cfg := machine.Cluster(2, 2, 2, 2) // 2 clusters × 2 chips × 2 cores × 2 threads
	job := Job{Name: "ring", N: 4, PowerPerProc: 1, Dist: core.InterProc}
	d := Allocate(cfg, job, 0)
	if !d.Feasible {
		t.Fatalf("infeasible: %s", d.Reason)
	}
	for i, th := range d.Placement {
		if cl := cfg.ClusterOf(th); cl != 0 {
			t.Fatalf("proc %d placed on cluster %d (thread %d); want all on cluster 0\nplacement %v",
				i, cl, th, d.Placement)
		}
	}
	if d.CoresUsed != 4 {
		t.Fatalf("cores used = %d, want all 4 of cluster 0", d.CoresUsed)
	}

	// 10 procs > one cluster's 8 thread slots at cap 2: exactly the
	// overflow crosses.
	big := Job{Name: "big", N: 10, PowerPerProc: 1, Dist: core.InterProc}
	d = Allocate(cfg, big, 0)
	if !d.Feasible {
		t.Fatalf("infeasible: %s", d.Reason)
	}
	perCluster := map[int]int{}
	for _, th := range d.Placement {
		perCluster[cfg.ClusterOf(th)]++
	}
	if perCluster[0] != 8 || perCluster[1] != 2 {
		t.Fatalf("per-cluster counts %v, want cluster0=8 cluster1=2", perCluster)
	}
	if err := Verify(cfg, d, 0); err != nil {
		t.Fatal(err)
	}
}
