package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/machine"
)

// Reallocate is the incremental variant of AllocateExcluding for a job
// that is already running on the placement `current`: every process
// whose thread's core survives (not in down) and fits under the
// envelope keeps its exact thread, and only the processes that must
// move — those on failed cores, or the excess when a shrinking
// envelope lowers the per-core cap below a core's occupancy — are
// re-placed. Movers go to surviving free slots cluster-aware: cores in
// clusters that already host keepers come first (the cross-cluster
// link is the slowest tier, so migration must not strand a process
// across it when room remains nearby), in the same speed-sorted order
// Allocate uses within each class.
//
// A Reallocate that moves nobody returns a placement identical to
// current, and its feasibility arithmetic (cap, slot counting, refusal
// reasons) is exactly AllocateExcluding's, so an infeasible job is
// refused with the same reason either way. A nil current is simply
// AllocateExcluding.
func Reallocate(cfg machine.Config, job Job, envelopePerCore float64, down map[int]bool, current core.Placement) Decision {
	if current == nil {
		return AllocateExcluding(cfg, job, envelopePerCore, down)
	}
	if len(current) != job.N {
		panic(fmt.Sprintf("sched: Reallocate placement has %d threads for a %d-process job", len(current), job.N))
	}
	d := Decision{Job: job, PerCorePower: map[int]float64{}}
	if job.N < 1 {
		d.Reason = "empty job"
		return d
	}
	cap := CapPerCore(cfg, job.PowerPerProc, envelopePerCore)
	d.ThreadsPerCoreCap = cap
	if cap == 0 {
		d.Reason = fmt.Sprintf("one process (P≤%.3g) already exceeds the %.3g envelope",
			job.PowerPerProc, envelopePerCore)
		return d
	}
	cores := cfg.NumCores()
	order := make([]int, 0, cores)
	for c := 0; c < cores; c++ {
		if !down[c] {
			order = append(order, c)
		}
	}
	alive := len(order)
	if alive == 0 {
		d.Reason = fmt.Sprintf("all %d cores are down", cores)
		return d
	}
	if job.N > cap*alive {
		if alive == cores {
			d.Reason = fmt.Sprintf("need %d slots but machine offers %d cores × %d = %d under the envelope",
				job.N, cores, cap, cap*cores)
		} else {
			d.Reason = fmt.Sprintf("need %d slots but only %d of %d cores survive × %d = %d under the envelope",
				job.N, alive, cores, cap, cap*alive)
		}
		return d
	}

	// Keepers hold their exact threads: first-come per core up to the
	// cap, so under a tightened envelope the later-ranked occupants of
	// an over-cap core are the ones that move.
	d.Feasible = true
	d.Placement = make(core.Placement, job.N)
	perCore := make([]int, cores)
	taken := make(map[machine.ThreadID]bool, job.N)
	movers := make([]int, 0, job.N)
	keeperCluster := make(map[int]bool)
	for i, th := range current {
		c := cfg.CoreOf(th)
		if down[c] || perCore[c] >= cap || taken[th] {
			movers = append(movers, i)
			continue
		}
		d.Placement[i] = th
		taken[th] = true
		perCore[c]++
		d.PerCorePower[c] += job.PowerPerProc
		keeperCluster[cfg.ClusterOf(th)] = true
	}
	d.Moved = len(movers)

	// Mover destination order: surviving cores in clusters hosting
	// keepers first, then the rest, each class in Allocate's
	// speed-sorted stable order.
	speedSort(cfg, order)
	moverOrder := make([]int, 0, alive)
	for _, c := range order {
		if keeperCluster[cfg.ClusterOf(machine.ThreadID(c*cfg.ThreadsPerCore))] {
			moverOrder = append(moverOrder, c)
		}
	}
	for _, c := range order {
		if !keeperCluster[cfg.ClusterOf(machine.ThreadID(c*cfg.ThreadsPerCore))] {
			moverOrder = append(moverOrder, c)
		}
	}
	place := func(i, c int) {
		// Lowest free hardware thread on c; a keeper may hold any slot.
		for k := 0; k < cfg.ThreadsPerCore; k++ {
			th := machine.ThreadID(c*cfg.ThreadsPerCore + k)
			if !taken[th] {
				d.Placement[i] = th
				taken[th] = true
				break
			}
		}
		perCore[c]++
		d.PerCorePower[c] += job.PowerPerProc
	}
	for _, i := range movers {
		switch job.Dist {
		case core.IntraProc:
			// Pack: first destination with room.
			for _, c := range moverOrder {
				if perCore[c] < cap {
					place(i, c)
					break
				}
			}
		case core.InterProc:
			// Spread: least-loaded destination, ties by order.
			best := -1
			for _, c := range moverOrder {
				if perCore[c] < cap && (best < 0 || perCore[c] < perCore[best]) {
					best = c
				}
			}
			place(i, best)
		default:
			panic(fmt.Sprintf("sched: unknown distribution %d", job.Dist))
		}
	}
	for _, n := range perCore {
		if n > 0 {
			d.CoresUsed++
		}
	}
	d.Reason = fmt.Sprintf("kept %d and moved %d of %d processes; %d core(s), ≤%d per core",
		job.N-d.Moved, d.Moved, job.N, d.CoresUsed, cap)
	return d
}

// speedSort orders cores fastest-first, stable for equal speeds — the
// visit order Allocate uses (see AllocateExcluding).
func speedSort(cfg machine.Config, order []int) {
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.CoreMult(order[a]) > cfg.CoreMult(order[b])
	})
}
