package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// TestReallocateNoDisruptionIsIdentity pins the no-op contract: with
// nothing down and the envelope unchanged, a Reallocate of a placement
// Allocate just produced moves nobody and returns that placement
// byte-identically, for both distribution attributes.
func TestReallocateNoDisruptionIsIdentity(t *testing.T) {
	cfg := machine.Niagara()
	for _, dist := range []core.Dist{core.IntraProc, core.InterProc} {
		job := Job{Name: "j", N: 10, PowerPerProc: 3, Dist: dist}
		d0 := Allocate(cfg, job, 10)
		if !d0.Feasible {
			t.Fatalf("dist %v: seed allocation infeasible: %s", dist, d0.Reason)
		}
		d1 := Reallocate(cfg, job, 10, nil, d0.Placement)
		if !d1.Feasible {
			t.Fatalf("dist %v: no-op reallocation infeasible: %s", dist, d1.Reason)
		}
		if d1.Moved != 0 {
			t.Errorf("dist %v: no-op reallocation moved %d processes", dist, d1.Moved)
		}
		if !reflect.DeepEqual(d1.Placement, d0.Placement) {
			t.Errorf("dist %v: no-op reallocation changed the placement:\n%v\nvs\n%v",
				dist, d1.Placement, d0.Placement)
		}
		if !reflect.DeepEqual(d1.PerCorePower, d0.PerCorePower) {
			t.Errorf("dist %v: no-op reallocation changed per-core power: %v vs %v",
				dist, d1.PerCorePower, d0.PerCorePower)
		}
	}
}

// TestReallocateNilCurrentIsAllocateExcluding pins the documented
// degenerate case: a nil current placement is exactly a from-scratch
// AllocateExcluding — the whole Decision, not just the placement.
func TestReallocateNilCurrentIsAllocateExcluding(t *testing.T) {
	cfg := machine.Niagara()
	job := Job{Name: "j", N: 7, PowerPerProc: 3, Dist: core.InterProc}
	down := map[int]bool{2: true, 5: true}
	want := AllocateExcluding(cfg, job, 7, down)
	got := Reallocate(cfg, job, 7, down, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reallocate(nil current) = %+v, want AllocateExcluding's %+v", got, want)
	}
}

// TestReallocateClusterWiped covers losing every core of a cluster:
// the displaced processes must land on surviving cores of the other
// cluster without evicting its keepers, and the result must still
// verify under the envelope.
func TestReallocateClusterWiped(t *testing.T) {
	cfg := machine.Niagara() // 8 cores, clusters {0..3} and {4..7}
	job := Job{Name: "j", N: 8, PowerPerProc: 3, Dist: core.InterProc}
	d0 := Allocate(cfg, job, 3) // cap 1/core: one proc on every core
	if !d0.Feasible || d0.CoresUsed != 8 {
		t.Fatalf("seed allocation: %+v", d0)
	}
	down := map[int]bool{}
	for c := 0; c < 4; c++ { // cluster 0 gone entirely
		down[c] = true
	}

	// Under the 1/core cap only 4 survivor slots remain for 8 procs.
	d1 := Reallocate(cfg, job, 3, down, d0.Placement)
	if d1.Feasible {
		t.Fatalf("half the machine down with a full machine's job should refuse, got %+v", d1)
	}
	if want := AllocateExcluding(cfg, job, 3, down).Reason; d1.Reason != want {
		t.Errorf("refusal reason %q, want AllocateExcluding's %q", d1.Reason, want)
	}

	// Raising the envelope makes it fit: 4 displaced procs join the 4
	// keepers on the surviving cluster, keepers pinned to their threads.
	d2 := Reallocate(cfg, job, 6, down, d0.Placement)
	if !d2.Feasible {
		t.Fatalf("reallocation onto the surviving cluster refused: %s", d2.Reason)
	}
	if d2.Moved != 4 {
		t.Errorf("moved %d processes, want the 4 displaced from the wiped cluster", d2.Moved)
	}
	for i, th := range d2.Placement {
		c := cfg.CoreOf(th)
		if down[c] {
			t.Errorf("process %d placed on down core %d", i, c)
		}
		if !down[cfg.CoreOf(d0.Placement[i])] && th != d0.Placement[i] {
			t.Errorf("keeper %d evicted: %v → %v", i, d0.Placement[i], th)
		}
	}
	if err := Verify(cfg, d2, 6); err != nil {
		t.Errorf("reallocation does not verify: %v", err)
	}
}

// TestReallocateAllCoresDown pins the no-survivors refusal.
func TestReallocateAllCoresDown(t *testing.T) {
	cfg := machine.Niagara()
	job := Job{Name: "j", N: 2, PowerPerProc: 3, Dist: core.IntraProc}
	d0 := Allocate(cfg, job, 10)
	down := map[int]bool{}
	for c := 0; c < cfg.NumCores(); c++ {
		down[c] = true
	}
	d := Reallocate(cfg, job, 10, down, d0.Placement)
	if d.Feasible {
		t.Fatalf("no survivors must refuse, got %+v", d)
	}
	if want := AllocateExcluding(cfg, job, 10, down).Reason; d.Reason != want {
		t.Errorf("refusal reason %q, want AllocateExcluding's %q", d.Reason, want)
	}
}

// TestReallocateInfeasibleParity sweeps disruption scenarios and
// checks that whenever Reallocate refuses, AllocateExcluding refuses
// too with the identical reason string — the arithmetic is shared, an
// incremental re-placement is never "more impossible" than a fresh one.
func TestReallocateInfeasibleParity(t *testing.T) {
	cfg := machine.Niagara()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		job := Job{
			Name:         "j",
			N:            1 + rng.Intn(2*cfg.NumThreads()),
			PowerPerProc: 1 + float64(rng.Intn(5)),
			Dist:         core.Dist(rng.Intn(2)),
		}
		env := float64(rng.Intn(20))
		seed := Allocate(cfg, job, 0) // hardware-bound placement to perturb
		if !seed.Feasible {
			continue
		}
		down := map[int]bool{}
		for c := 0; c < cfg.NumCores(); c++ {
			if rng.Intn(3) == 0 {
				down[c] = true
			}
		}
		re := Reallocate(cfg, job, env, down, seed.Placement)
		fresh := AllocateExcluding(cfg, job, env, down)
		if re.Feasible != fresh.Feasible {
			t.Fatalf("trial %d (%+v env %g down %v): Reallocate feasible=%v, AllocateExcluding=%v",
				trial, job, env, down, re.Feasible, fresh.Feasible)
		}
		if !re.Feasible {
			if re.Reason != fresh.Reason {
				t.Fatalf("trial %d: refusal reasons differ: %q vs %q", trial, re.Reason, fresh.Reason)
			}
			continue
		}
		if err := Verify(cfg, re, env); err != nil {
			t.Fatalf("trial %d: reallocation does not verify: %v", trial, err)
		}
		for i, th := range re.Placement {
			if down[cfg.CoreOf(th)] {
				t.Fatalf("trial %d: process %d on down core", trial, i)
			}
		}
	}
}
