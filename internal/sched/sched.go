// Package sched implements the application the paper builds STAMP for:
// using the complexity estimates "to better utilize CMP/CMT-based
// machines within given constraints such as power". It allocates STAMP
// processes to hardware threads honoring the distribution attribute and
// per-processor power envelopes, reproducing decisions like §4's "the
// Jacobi algorithm should not be assigned to more than three
// intra-processor threads per processor".
package sched

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Job describes a group of identical STAMP processes to place.
type Job struct {
	Name string
	N    int // number of processes
	// PowerPerProc is the per-process power upper bound from the cost
	// model (e.g. cost.Jacobi.PowerBound()).
	PowerPerProc float64
	Dist         core.Dist
}

// Decision is the allocator's output.
type Decision struct {
	Job       Job
	Feasible  bool
	Reason    string
	Placement core.Placement
	// ThreadsPerCoreCap is how many of the job's processes one core
	// may run without violating the envelope (capped by the hardware
	// thread count).
	ThreadsPerCoreCap int
	// CoresUsed is the number of distinct cores in the placement.
	CoresUsed int
	// PerCorePower maps used core → estimated power.
	PerCorePower map[int]float64
	// Moved counts the processes Reallocate assigned a new thread
	// (always 0 for from-scratch allocations).
	Moved int
}

// CapPerCore returns how many processes with power p fit under a
// per-core envelope, bounded by the core's hardware thread count.
// A zero or negative envelope means "unlimited".
func CapPerCore(cfg machine.Config, p, envelope float64) int {
	cap := cfg.ThreadsPerCore
	if envelope > 0 && p > 0 {
		byPower := int(envelope / p)
		if byPower < cap {
			cap = byPower
		}
	}
	return cap
}

// Allocate places job's processes on cfg under a per-core power
// envelope. IntraProc packs the minimum number of cores (filling each
// up to its power cap); InterProc deals processes round-robin across
// all cores up to the cap. If the machine cannot hold the job within
// the envelope, Feasible is false and Placement is nil.
func Allocate(cfg machine.Config, job Job, envelopePerCore float64) Decision {
	return AllocateExcluding(cfg, job, envelopePerCore, nil)
}

// AllocateExcluding is Allocate restricted to the cores NOT marked in
// down — the re-placement entry point of graceful degradation: after
// a fault.Plan reports failed cores, the controller asks for a new
// placement of the surviving work on the surviving silicon, still
// under the power envelope. A nil or empty down map is exactly
// Allocate.
func AllocateExcluding(cfg machine.Config, job Job, envelopePerCore float64, down map[int]bool) Decision {
	d := Decision{Job: job, PerCorePower: map[int]float64{}}
	if job.N < 1 {
		d.Reason = "empty job"
		return d
	}
	cap := CapPerCore(cfg, job.PowerPerProc, envelopePerCore)
	d.ThreadsPerCoreCap = cap
	if cap == 0 {
		d.Reason = fmt.Sprintf("one process (P≤%.3g) already exceeds the %.3g envelope",
			job.PowerPerProc, envelopePerCore)
		return d
	}
	cores := cfg.NumCores()
	// order holds the usable (surviving) cores; the placement loops only
	// ever index into it, so a down core can never receive a process.
	order := make([]int, 0, cores)
	for c := 0; c < cores; c++ {
		if !down[c] {
			order = append(order, c)
		}
	}
	alive := len(order)
	if alive == 0 {
		d.Reason = fmt.Sprintf("all %d cores are down", cores)
		return d
	}
	if job.N > cap*alive {
		if alive == cores {
			d.Reason = fmt.Sprintf("need %d slots but machine offers %d cores × %d = %d under the envelope",
				job.N, cores, cap, cap*cores)
		} else {
			d.Reason = fmt.Sprintf("need %d slots but only %d of %d cores survive × %d = %d under the envelope",
				job.N, alive, cores, cap, cap*alive)
		}
		return d
	}

	d.Feasible = true
	d.Placement = make(core.Placement, job.N)
	perCore := make([]int, cores)
	// On heterogeneous machines, visit faster processors first: local
	// operations finish sooner there at the same hardware-thread count
	// (power rises as mult³, but the envelope accounting here uses the
	// caller's per-process estimate either way). Order is stable for
	// equal speeds, so homogeneous machines keep the 0,1,2,… layout.
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.CoreMult(order[a]) > cfg.CoreMult(order[b])
	})
	place := func(i, c int) {
		th := machine.ThreadID(c*cfg.ThreadsPerCore + perCore[c])
		d.Placement[i] = th
		perCore[c]++
		d.PerCorePower[c] += job.PowerPerProc
	}
	switch job.Dist {
	case core.IntraProc:
		idx := 0
		for i := 0; i < job.N; i++ {
			for perCore[order[idx]] >= cap {
				idx++
			}
			place(i, order[idx])
		}
	case core.InterProc:
		// Deal round-robin, but on clustered machines fill one
		// cluster's cores before spilling to the next: the cross-
		// cluster link is the slowest tier (L_c > L_x > L_e), so a job
		// that fits one cluster must never pay it. Flat machines form
		// a single group, which is exactly the old global round-robin.
		i := 0
		for _, grp := range clusterGroups(cfg, order) {
			room := cap * len(grp)
			idx := 0
			for i < job.N && room > 0 {
				for perCore[grp[idx]] >= cap {
					idx = (idx + 1) % len(grp)
				}
				place(i, grp[idx])
				idx = (idx + 1) % len(grp)
				i++
				room--
			}
			if i >= job.N {
				break
			}
		}
	default:
		panic(fmt.Sprintf("sched: unknown distribution %d", job.Dist))
	}
	for _, n := range perCore {
		if n > 0 {
			d.CoresUsed++
		}
	}
	d.Reason = fmt.Sprintf("placed %d processes on %d core(s), ≤%d per core",
		job.N, d.CoresUsed, cap)
	return d
}

// clusterGroups partitions the (speed-ordered) usable cores by the
// cluster they belong to, preserving order within each group. Cluster
// order follows first appearance, so faster clusters come first on
// heterogeneous machines. Flat machines yield one group.
func clusterGroups(cfg machine.Config, order []int) [][]int {
	if cfg.NumClusters() <= 1 {
		return [][]int{order}
	}
	idx := map[int]int{}
	var groups [][]int
	for _, c := range order {
		cl := cfg.ClusterOf(machine.ThreadID(c * cfg.ThreadsPerCore))
		g, ok := idx[cl]
		if !ok {
			g = len(groups)
			idx[cl] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], c)
	}
	return groups
}

// Record publishes the allocation decision as gauges, so placement and
// power-envelope headroom are scrapeable alongside the run's metrics:
//
//	stamp_sched_feasible{job}            1 if the job was placeable
//	stamp_sched_cores_used{job}          distinct cores in the placement
//	stamp_sched_threads_per_core_cap{job}
//	stamp_sched_core_power{job,core}     estimated power per used core
//	stamp_sched_envelope_headroom{job,core}  envelope − estimated power
//
// No-op on a nil registry.
func (d Decision) Record(r *obs.Registry, envelopePerCore float64) {
	if r == nil {
		return
	}
	jl := obs.L("job", d.Job.Name)
	feasible := 0.0
	if d.Feasible {
		feasible = 1
	}
	r.Gauge("stamp_sched_feasible", "Whether the job fit under the power envelope.", jl).Set(feasible)
	r.Gauge("stamp_sched_cores_used", "Distinct cores used by the placement.", jl).Set(float64(d.CoresUsed))
	r.Gauge("stamp_sched_threads_per_core_cap", "Processes one core may run under the envelope.", jl).Set(float64(d.ThreadsPerCoreCap))
	for c, p := range d.PerCorePower {
		cl := obs.L("core", strconv.Itoa(c))
		r.Gauge("stamp_sched_core_power", "Estimated power of the job's processes on this core.", jl, cl).Set(p)
		if envelopePerCore > 0 {
			r.Gauge("stamp_sched_envelope_headroom", "Per-core power envelope minus estimated power.", jl, cl).Set(envelopePerCore - p)
		}
	}
}

// Verify re-checks a decision against the envelope; it returns an error
// if any core's estimated power exceeds it (a safety net for
// hand-written placements).
func Verify(cfg machine.Config, d Decision, envelopePerCore float64) error {
	if !d.Feasible {
		return nil
	}
	perCore := map[int]float64{}
	perThread := map[machine.ThreadID]int{}
	for _, th := range d.Placement {
		perCore[cfg.CoreOf(th)] += d.Job.PowerPerProc
		perThread[th]++
		if perThread[th] > 1 {
			return fmt.Errorf("sched: thread %d assigned %d processes", th, perThread[th])
		}
	}
	if envelopePerCore > 0 {
		for c, p := range perCore {
			if p > envelopePerCore+1e-9 {
				return fmt.Errorf("sched: core %d at %.3g exceeds envelope %.3g", c, p, envelopePerCore)
			}
		}
	}
	return nil
}

// Choose picks a distribution for the job: intra_proc when the whole
// job fits under the envelope on one processor (fastest communication,
// the paper's stated preference), otherwise inter_proc to spread power
// across processors; it returns the winning decision.
func Choose(cfg machine.Config, job Job, envelopePerCore float64) Decision {
	intra := job
	intra.Dist = core.IntraProc
	di := Allocate(cfg, intra, envelopePerCore)
	if di.Feasible && di.CoresUsed == 1 {
		di.Reason = "intra_proc: whole job fits one processor under the envelope; " + di.Reason
		return di
	}
	inter := job
	inter.Dist = core.InterProc
	de := Allocate(cfg, inter, envelopePerCore)
	if de.Feasible {
		de.Reason = "inter_proc: spreading to stay within per-processor power; " + de.Reason
		return de
	}
	if di.Feasible {
		di.Reason = "intra_proc (multi-core packing): " + di.Reason
		return di
	}
	return de
}
