// Package agenttest provides a minimal implementation of the Agent
// interface shared by the substrate packages (memory, msgpass, stm),
// for use in their tests. The production implementation is the STAMP
// core's execution context (internal/core.Ctx).
package agenttest

import (
	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Agent binds a simulated process to a hardware thread and a counter
// set. It implements the Agent interfaces of memory, msgpass and stm.
type Agent struct {
	P *sim.Proc
	T machine.ThreadID
	C energy.Counters
	// Prof, when non-nil, receives the agent's virtual-time attribution
	// (tests that assert profile categories set it).
	Prof *obs.ProcProfile
	fr   float64                    // fractional tick accumulator for HoldCost
	frC  [obs.NumCategories]float64 // per-category accumulators for ChargeCost
}

// New returns an agent for process p bound to thread t.
func New(p *sim.Proc, t machine.ThreadID) *Agent {
	return &Agent{P: p, T: t}
}

// Proc returns the simulated process.
func (a *Agent) Proc() *sim.Proc { return a.P }

// Thread returns the bound hardware thread.
func (a *Agent) Thread() machine.ThreadID { return a.T }

// Counters returns the agent's operation counters.
func (a *Agent) Counters() *energy.Counters { return &a.C }

// Profile returns the agent's profile sink (nil unless a test attached
// one; the nil profile is a no-op).
func (a *Agent) Profile() *obs.ProcProfile { return a.Prof }

// HoldCost charges fractional virtual time, holding whole ticks as they
// accumulate. The remainder carries over deterministically.
func (a *Agent) HoldCost(ticks float64) {
	if ticks < 0 {
		panic("agenttest: negative cost")
	}
	a.fr += ticks
	if a.fr >= 1 {
		n := sim.Time(a.fr)
		a.fr -= float64(n)
		a.P.Hold(n)
	}
}

// ChargeCost charges fractional virtual time with per-category carry,
// attributing the materialized whole ticks to cat — the substrate
// Agent interfaces' charging primitive (mirrors core.Ctx.ChargeCost).
func (a *Agent) ChargeCost(cat obs.Category, ticks float64) {
	if ticks < 0 {
		panic("agenttest: negative cost")
	}
	f := a.frC[cat] + ticks
	if f >= 1 {
		n := sim.Time(f)
		f -= float64(n)
		a.P.Hold(n)
		a.Prof.Charge(cat, n)
	}
	a.frC[cat] = f
}
