package opt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/machine"
)

// wl is a compute-heavy embarrassingly parallel workload.
func wl() Workload {
	return Workload{
		Name:       "reduce",
		TotalFp:    8192,
		TotalInt:   1024,
		Iterations: 4,
	}
}

// commWl adds all-to-all messaging (Jacobi-like).
func commWl() Workload {
	w := wl()
	w.MsgsPerProc = AllToAll
	return w
}

func TestEvaluateRejectsBadConfigs(t *testing.T) {
	cfg := machine.Niagara()
	if ev := Evaluate(cfg, wl(), Config{P: 0, Freq: 1}); ev.Feasible {
		t.Fatal("p=0 feasible")
	}
	if ev := Evaluate(cfg, wl(), Config{P: 99, Freq: 1}); ev.Feasible {
		t.Fatal("p beyond machine feasible")
	}
	if ev := Evaluate(cfg, wl(), Config{P: 1, Freq: 0}); ev.Feasible {
		t.Fatal("f=0 feasible")
	}
}

func TestParallelismCutsTime(t *testing.T) {
	cfg := machine.Niagara()
	e1 := Evaluate(cfg, wl(), Config{P: 1, Dist: core.IntraProc, Freq: 1})
	e8 := Evaluate(cfg, wl(), Config{P: 8, Dist: core.InterProc, Freq: 1})
	if e8.T >= e1.T {
		t.Fatalf("8-way T=%.0f not below 1-way T=%.0f", e8.T, e1.T)
	}
	// Pure compute: energy identical regardless of split.
	if e8.E != e1.E {
		t.Fatalf("compute energy changed with p: %g vs %g", e8.E, e1.E)
	}
}

func TestCommunicationPenalizesWideSpread(t *testing.T) {
	cfg := machine.Niagara()
	// All-to-all: more processes mean more messages; the model must
	// show the tradeoff (time no longer monotone in p).
	e2 := Evaluate(cfg, commWl(), Config{P: 2, Dist: core.InterProc, Freq: 1})
	e32 := Evaluate(cfg, commWl(), Config{P: 32, Dist: core.InterProc, Freq: 1})
	if e32.E <= e2.E {
		t.Fatal("message energy did not grow with p")
	}
}

func TestDVFSScaling(t *testing.T) {
	cfg := machine.Niagara()
	base := Evaluate(cfg, wl(), Config{P: 4, Dist: core.IntraProc, Freq: 1})
	half := Evaluate(cfg, wl(), Config{P: 4, Dist: core.IntraProc, Freq: 0.5})
	if half.T != 2*base.T {
		t.Fatalf("half-freq T %g, want %g", half.T, 2*base.T)
	}
	if half.E != base.E/4 {
		t.Fatalf("half-freq E %g, want %g", half.E, base.E/4)
	}
	// Power per core ∝ f³.
	if got, want := half.PerCore, base.PerCore/8; mathAbs(got-want) > 1e-9 {
		t.Fatalf("half-freq per-core power %g, want %g", got, want)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMetricDPicksFastHot(t *testing.T) {
	cfg := machine.Niagara()
	freqs := []float64{0.5, 1}
	best, _ := Optimize(cfg, wl(), energy.MetricD, 0, freqs)
	if !best.Feasible {
		t.Fatal("no feasible config")
	}
	if best.Cfg.Freq != 1 {
		t.Fatalf("D-optimal frequency %g, want max", best.Cfg.Freq)
	}
	if best.Cfg.P != 32 {
		t.Fatalf("D-optimal p=%d, want all 32 threads for pure compute", best.Cfg.P)
	}
}

func TestMetricPDPPicksSlowCool(t *testing.T) {
	cfg := machine.Niagara()
	freqs := []float64{0.5, 1}
	best, _ := Optimize(cfg, wl(), energy.MetricPDP, 0, freqs)
	if best.Cfg.Freq != 0.5 {
		t.Fatalf("PDP-optimal frequency %g, want min (E ∝ f²)", best.Cfg.Freq)
	}
}

func TestMetricsDisagree(t *testing.T) {
	// The paper's premise: different deployment environments (metrics)
	// select different configurations.
	cfg := machine.Niagara()
	freqs := []float64{0.5, 1}
	d, _ := Optimize(cfg, wl(), energy.MetricD, 0, freqs)
	pdp, _ := Optimize(cfg, wl(), energy.MetricPDP, 0, freqs)
	if d.Cfg == pdp.Cfg {
		t.Fatalf("D and PDP chose the same config %v", d.Cfg)
	}
}

func TestEnvelopeConstrainsChoice(t *testing.T) {
	cfg := machine.Niagara()
	unconstrained, _ := Optimize(cfg, wl(), energy.MetricD, 0, []float64{1})
	// A harsh envelope forbids the hottest configurations.
	constrained, all := Optimize(cfg, wl(), energy.MetricD, unconstrained.PerCore/2, []float64{1})
	if !constrained.Feasible {
		t.Fatal("no feasible config under envelope")
	}
	if constrained.PerCore > unconstrained.PerCore/2+1e-9 {
		t.Fatalf("chosen config exceeds envelope: %g", constrained.PerCore)
	}
	if constrained.T < unconstrained.T {
		t.Fatal("constrained optimum faster than unconstrained?")
	}
	infeasibles := 0
	for _, ev := range all {
		if !ev.Feasible && ev.Reason == "" {
			t.Fatal("infeasible eval without reason")
		}
		if !ev.Feasible {
			infeasibles++
		}
	}
	if infeasibles == 0 {
		t.Fatal("envelope excluded nothing")
	}
}

func TestCommWorkloadPrefersFewerProcsThanCompute(t *testing.T) {
	cfg := machine.Niagara()
	bestComm, _ := Optimize(cfg, commWl(), energy.MetricD, 0, []float64{1})
	bestPure, _ := Optimize(cfg, wl(), energy.MetricD, 0, []float64{1})
	if bestComm.Cfg.P > bestPure.Cfg.P {
		t.Fatalf("all-to-all picked more procs (%d) than pure compute (%d)",
			bestComm.Cfg.P, bestPure.Cfg.P)
	}
}

func TestOptimizeDefaultFreqs(t *testing.T) {
	best, all := Optimize(machine.Niagara(), wl(), energy.MetricEDP, 0, nil)
	if !best.Feasible || len(all) == 0 {
		t.Fatal("default-freq optimize failed")
	}
	// Results sorted: feasible first, ascending metric.
	prev := -1.0
	for _, ev := range all {
		if !ev.Feasible {
			break
		}
		s := ev.Metric(energy.MetricEDP)
		if prev >= 0 && s < prev {
			t.Fatal("feasible evals not sorted by metric")
		}
		prev = s
	}
}

func TestConfigString(t *testing.T) {
	c := Config{P: 4, Dist: core.IntraProc, Freq: 0.5}
	if c.String() == "" {
		t.Fatal("empty config string")
	}
}

func TestRingPattern(t *testing.T) {
	if Ring(8) != 1 || AllToAll(8) != 7 {
		t.Fatal("patterns wrong")
	}
}
