// Package opt implements the paper's stated future work (§5): "finding
// a systematic way of optimizing the overall performance of the
// multi-threaded machine based on the complexity estimates provided by
// our STAMP complexity model." Given an iterative data-parallel
// workload description, it enumerates machine configurations — process
// count, distribution attribute, DVFS point — evaluates each with the
// §3.1 cost formulas, and returns the optimum under any of the §2.1
// metrics (D, PDP, EDP, ED²P) subject to per-processor power envelopes.
package opt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/machine"
)

// Workload describes one iteration of a symmetric data-parallel STAMP
// algorithm whose work divides evenly among p processes.
type Workload struct {
	Name string
	// Total local operations per iteration, split across processes.
	TotalFp, TotalInt int64
	// MsgsPerProc returns how many messages each process sends (and
	// receives) per iteration when run with p processes; nil means no
	// message passing.
	MsgsPerProc func(p int) int
	// SharedRWPerProc returns shared-memory reads+writes per process
	// per iteration; nil means none.
	SharedRWPerProc func(p int) int
	// Iterations is the S-unit count.
	Iterations int
}

// Config is one point of the search space.
type Config struct {
	P    int       // processes
	Dist core.Dist // placement attribute
	Freq float64   // DVFS multiplier
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("p=%d %v f=%.2gx", c.P, c.Dist, c.Freq)
}

// Eval is the model's verdict on one configuration.
type Eval struct {
	Cfg      Config
	T        float64 // predicted total execution time
	E        float64 // predicted total energy
	PerCore  float64 // predicted power per busiest processor
	Feasible bool
	Reason   string // why infeasible, if so
}

// Power returns total mean power E/T.
func (e Eval) Power() float64 {
	if e.T == 0 {
		return 0
	}
	return e.E / e.T
}

// Metric evaluates the §2.1 objective on the prediction.
func (e Eval) Metric(m energy.Metric) float64 {
	switch m {
	case energy.MetricD:
		return e.T
	case energy.MetricPDP:
		return e.E
	case energy.MetricEDP:
		return e.E * e.T
	case energy.MetricED2P:
		return e.E * e.T * e.T
	}
	panic("opt: unknown metric")
}

// Evaluate predicts one configuration on machine cfg under the §3.1
// formulas.
func Evaluate(cfg machine.Config, w Workload, c Config) Eval {
	ev := Eval{Cfg: c}
	if c.P < 1 || c.P > cfg.NumThreads() {
		ev.Reason = fmt.Sprintf("p=%d outside [1,%d]", c.P, cfg.NumThreads())
		return ev
	}
	if c.Freq <= 0 {
		ev.Reason = "non-positive frequency"
		return ev
	}

	m := cost.FromCostTable(cfg.Costs)
	intra := c.Dist == core.IntraProc && c.P <= cfg.ThreadsPerCore

	r := cost.Round{
		CFp:  float64(w.TotalFp) / float64(c.P),
		CInt: float64(w.TotalInt) / float64(c.P),
	}
	if intra {
		r.PA = c.P
	} else {
		r.PE = c.P
	}
	if w.MsgsPerProc != nil && c.P > 1 {
		n := float64(w.MsgsPerProc(c.P))
		r.MsgPassing = n > 0
		if intra {
			r.MSa, r.MRa = n, n
		} else {
			r.MSe, r.MRe = n, n
		}
	}
	if w.SharedRWPerProc != nil {
		n := float64(w.SharedRWPerProc(c.P))
		r.SharedMem = n > 0
		if intra {
			r.DRa, r.DWa = n/2, n/2
		} else {
			r.DRe, r.DWe = n/2, n/2
		}
	}

	// DVFS scaling: local time ∝ 1/f, local energy ∝ f²;
	// communication latency/energy unscaled (wire/memory bound).
	compT := r.C(m) / c.Freq
	commT := r.T(m) - r.C(m)
	compE := (r.CFp*m.WFp + r.CInt*m.WInt) * c.Freq * c.Freq
	commE := r.E(m) - (r.CFp*m.WFp + r.CInt*m.WInt)

	iterT := compT + commT
	perProcE := compE + commE
	ev.T = iterT * float64(w.Iterations)
	ev.E = perProcE * float64(c.P) * float64(w.Iterations)

	// Processor occupancy: intra packs ThreadsPerCore per core.
	var procsOnBusiest int
	if c.Dist == core.IntraProc {
		procsOnBusiest = c.P
		if procsOnBusiest > cfg.ThreadsPerCore {
			procsOnBusiest = cfg.ThreadsPerCore
		}
	} else {
		procsOnBusiest = (c.P + cfg.NumCores() - 1) / cfg.NumCores()
	}
	if iterT > 0 {
		ev.PerCore = perProcE / iterT * float64(procsOnBusiest)
	}
	ev.Feasible = true
	ev.Reason = "ok"
	return ev
}

// Optimize enumerates p ∈ [1, threads], both distributions and the
// given DVFS points, and returns the best feasible configuration under
// metric plus every evaluation (for reporting). envelope ≤ 0 means
// unconstrained. The search is exhaustive — the space is tiny and the
// evaluations are closed-form, which is exactly the "quick comparison"
// role §3 assigns the model.
func Optimize(cfg machine.Config, w Workload, metric energy.Metric, envelope float64, freqs []float64) (Eval, []Eval) {
	if len(freqs) == 0 {
		freqs = []float64{1}
	}
	var all []Eval
	best := Eval{}
	bestScore := math.Inf(1)
	for p := 1; p <= cfg.NumThreads(); p++ {
		for _, d := range []core.Dist{core.IntraProc, core.InterProc} {
			for _, f := range freqs {
				ev := Evaluate(cfg, w, Config{P: p, Dist: d, Freq: f})
				if ev.Feasible && envelope > 0 && ev.PerCore > envelope+1e-9 {
					ev.Feasible = false
					ev.Reason = fmt.Sprintf("per-core power %.3g exceeds envelope %.3g", ev.PerCore, envelope)
				}
				all = append(all, ev)
				if !ev.Feasible {
					continue
				}
				score := ev.Metric(metric)
				if score < bestScore {
					bestScore = score
					best = ev
				}
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Feasible != all[j].Feasible {
			return all[i].Feasible
		}
		return all[i].Metric(metric) < all[j].Metric(metric)
	})
	return best, all
}

// AllToAll is the Jacobi-style communication pattern: every process
// exchanges one message with every other per iteration.
func AllToAll(p int) int { return p - 1 }

// Ring is the nearest-neighbor pattern.
func Ring(p int) int { return 1 }
